//! The shared query core of the server: dataset, R*-tree, BPT store and
//! update log, published as an epoch-stamped immutable [`Snapshot`] behind
//! a [`SnapshotCell`]. Query paths [`pin`](ServerCore::pin) the current
//! snapshot (a refcount bump) and read it with plain `&self` methods, so a
//! `ServerCore` is `Send + Sync` and serves any number of worker threads —
//! the concurrency story of a server that, per Fig. 3, serves many mobile
//! clients at once. Updates ([`ServerCore::apply_updates`]) build the
//! *next* snapshot off to the side and publish it with one pointer swap,
//! so readers never block on churn and a pinned reader always sees one
//! consistent (tree, BPTs, store, epoch) world.
//!
//! The per-client *adaptive* state (§4.3) deliberately lives outside this
//! type, in [`crate::AdaptiveController`]; [`crate::Server`] composes the
//! two and remains the one-stop façade.

use crate::epoch::SnapshotCell;
use crate::forms::{build_shipments, FormMode};
use crate::sync_util::lock_recover;
use crate::updates::{Update, UpdateLog};
use pc_rtree::bpt::BptStore;
use pc_rtree::engine::{execute, resume, AccessLog, NoopTracer, Outcome};
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::view::FullView;
use pc_rtree::{ObjectStore, RTree, RTreeConfig};
use std::sync::{Arc, Mutex};

/// One immutable epoch of the server's world: index + data + versioning,
/// no per-client state. All query methods take `&self`; nothing here ever
/// mutates after publication.
#[derive(Clone, Debug)]
pub struct Snapshot {
    tree: RTree,
    bpts: BptStore,
    store: ObjectStore,
    updates: UpdateLog,
}

impl Snapshot {
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    pub(crate) fn tree_mut(&mut self) -> &mut RTree {
        &mut self.tree
    }

    pub fn bpts(&self) -> &BptStore {
        &self.bpts
    }

    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Update/invalidation state (§7 extension).
    pub fn update_log(&self) -> &UpdateLog {
        &self.updates
    }

    pub(crate) fn update_log_mut(&mut self) -> &mut UpdateLog {
        &mut self.updates
    }

    /// The epoch this snapshot was published at (0 = the bulk-loaded seed).
    pub fn epoch(&self) -> u64 {
        self.updates.epoch()
    }

    /// Rebuilds the BPT of one node after its entry set changed.
    pub(crate) fn rebuild_bpt(&mut self, node: pc_rtree::NodeId) {
        self.bpts.rebuild_node(&self.tree, node);
    }

    /// Evaluates a query directly (no caching) — ground truth for the
    /// simulator's metrics and the backend for the PAG/SEM baselines.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        let view = FullView::new(&self.tree, &self.bpts);
        execute(&view, spec, &mut NoopTracer)
    }

    /// Stage ② of Fig. 3 with an explicit form: resumes `Qr` from its heap,
    /// assembles `Rr` (splitting confirmed-cached results from transmitted
    /// ones) and the supporting index `Ir` in `mode`. This is the
    /// policy-free primitive behind [`crate::Server::process_remainder`].
    pub fn resume_remainder(&self, rq: &RemainderQuery, mode: FormMode) -> ServerReply {
        let view = FullView::new(&self.tree, &self.bpts);
        let mut log = AccessLog::default();
        let outcome = resume(&view, rq, &mut log);
        debug_assert!(outcome.remainder.is_none(), "server must finish queries");

        let index = build_shipments(&log, &self.tree, &self.bpts, mode);

        let mut confirmed = Vec::new();
        let mut objects = Vec::new();
        for &(id, cached) in &outcome.results {
            if cached {
                confirmed.push(id);
            } else {
                objects.push(*self.store.get(id));
            }
        }
        ServerReply {
            confirmed,
            objects,
            pairs: outcome.result_pairs,
            index,
            expansions: outcome.expansions,
        }
    }

    /// Auxiliary BPT bytes (§6.4's "4.2 MB for NE" statistic).
    pub fn bpt_bytes(&self) -> u64 {
        self.bpts.total_aux_bytes()
    }
}

/// The shared-state heart of the server: the current [`Snapshot`] plus the
/// writer lock that serializes epoch transitions.
#[derive(Debug)]
pub struct ServerCore {
    snap: SnapshotCell<Snapshot>,
    /// Serializes `apply_updates` callers: each builds its next snapshot
    /// from the one it read, so concurrent writers must not interleave
    /// (last-publish-wins would silently drop a batch).
    write: Mutex<()>,
}

impl Clone for ServerCore {
    fn clone(&self) -> Self {
        ServerCore {
            snap: SnapshotCell::new(Snapshot::clone(&self.pin())),
            write: Mutex::new(()),
        }
    }
}

impl ServerCore {
    /// Bulk loads the index over `store` and prepares the BPTs offline.
    pub fn build(store: ObjectStore, tree_cfg: RTreeConfig) -> Self {
        let objects: Vec<_> = store.iter().copied().collect();
        ServerCore::build_with_objects(store, tree_cfg, &objects)
    }

    /// [`build`](Self::build) indexing only `objects` — a subset of
    /// `store` — while keeping the whole store resident. This is a
    /// cluster shard's shape: every shard shares the global object store
    /// (ids, sizes, liveness are world-wide facts) but its tree covers
    /// only the objects whose MBRs touch the tiles it owns.
    pub fn build_with_objects(
        store: ObjectStore,
        tree_cfg: RTreeConfig,
        objects: &[pc_rtree::SpatialObject],
    ) -> Self {
        let tree = RTree::bulk_load(tree_cfg, objects);
        let bpts = BptStore::build(&tree);
        ServerCore {
            snap: SnapshotCell::new(Snapshot {
                tree,
                bpts,
                store,
                updates: UpdateLog::default(),
            }),
            write: Mutex::new(()),
        }
    }

    /// Pins the current snapshot: an `Arc` that stays valid and internally
    /// consistent across concurrent [`apply_updates`](Self::apply_updates)
    /// publishes. Pin once per query and read everything off the pin.
    pub fn pin(&self) -> Arc<Snapshot> {
        self.snap.pin()
    }

    /// The current epoch (bumped once per applied update batch).
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// [`Snapshot::direct`] on the current snapshot.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        self.pin().direct(spec)
    }

    /// [`Snapshot::resume_remainder`] on the current snapshot.
    pub fn resume_remainder(&self, rq: &RemainderQuery, mode: FormMode) -> ServerReply {
        self.pin().resume_remainder(rq, mode)
    }

    /// [`Snapshot::bpt_bytes`] on the current snapshot.
    pub fn bpt_bytes(&self) -> u64 {
        self.pin().bpt_bytes()
    }

    /// Applies one batch of updates atomically *while queries keep
    /// running*: clones the current snapshot **structurally** (the tree's
    /// node slab, the per-node BPTs and the store's segments are all
    /// `Arc`-shared, so the clone copies pointer tables, not data), mutates
    /// the clone — copy-on-write touches only the root-to-leaf spines and
    /// store segments the batch lands in, and only dirty nodes' BPTs are
    /// rebuilt — and publishes it with a single pointer swap. Readers
    /// pinned to the old epoch are untouched; the next pin sees the new
    /// epoch. Returns the new epoch. Concurrent callers serialize on the
    /// writer lock.
    ///
    /// Updates naming ids the store never assigned are **ignored** (a
    /// malformed batch must not panic the writer mid-epoch), as are
    /// deletes/moves of already-tombstoned objects.
    ///
    /// This entry point never prunes update history; [`crate::Server`]'s
    /// wrapper passes the fleet low-water mark and history cap through
    /// [`apply_updates_bounded`](Self::apply_updates_bounded).
    pub fn apply_updates(&self, updates: &[Update]) -> u64 {
        self.apply_updates_bounded(updates, None, u64::MAX)
    }

    /// [`apply_updates`](Self::apply_updates) with history bounding: after
    /// publishing epoch `N`, update-log records at or below
    /// `max(client_floor, N - max_history)` are pruned and the log's
    /// low-water mark rises accordingly — a client stamped below it gets a
    /// [`VersionedReply::FullRefresh`](pc_rtree::proto::VersionedReply)
    /// refusal instead of a truncated invalidation list.
    ///
    /// `client_floor` is the fleet's minimum last-synced epoch (see
    /// `AdaptiveController::epoch_low_water`); `None` means no versioned
    /// client is tracked and only the hard cap applies.
    pub fn apply_updates_bounded(
        &self,
        updates: &[Update],
        client_floor: Option<u64>,
        max_history: u64,
    ) -> u64 {
        let _writer = lock_recover(&self.write);
        let mut next = Snapshot::clone(&self.pin());
        let mut deleted: Vec<pc_rtree::ObjectId> = Vec::new();
        for u in updates {
            match *u {
                Update::Insert { mbr, size_bytes } => {
                    let id = next.store_mut().push(mbr, size_bytes);
                    let obj = *next.store().get(id);
                    next.tree_mut().insert(&obj);
                }
                Update::Delete(id) => {
                    let Some(mbr) = next.store().try_get(id).map(|o| o.mbr) else {
                        continue; // unknown id: malformed batch entry, skip
                    };
                    if next.tree_mut().delete(id, &mbr) {
                        next.store_mut().mark_dead(id);
                        deleted.push(id);
                    }
                }
                Update::Move { id, to } => {
                    let Some(from) = next.store().try_get(id).map(|o| o.mbr) else {
                        continue; // unknown id: malformed batch entry, skip
                    };
                    if next.tree_mut().delete(id, &from) {
                        next.store_mut().set_mbr(id, to);
                        let obj = *next.store().get(id);
                        next.tree_mut().insert(&obj);
                    }
                }
            }
        }
        let dirty = next.tree_mut().take_dirty();
        let epoch = next.update_log_mut().bump_epoch();
        for id in deleted {
            next.update_log_mut().record_delete(id, epoch);
        }
        for n in dirty {
            next.rebuild_bpt(n);
            next.update_log_mut().record_change(n, epoch);
        }
        let horizon = client_floor
            .unwrap_or(0)
            .max(epoch.saturating_sub(max_history));
        next.update_log_mut().prune(horizon);
        self.snap.publish(next);
        epoch
    }

    /// Publishes one routed slice of a cluster update batch against this
    /// shard: swaps in the already-updated global `store` (the cluster
    /// processes id assignment, liveness and MBR changes once, against one
    /// store for all shards) and applies the shard-local tree operations
    /// the router derived from tile ownership. `tombstones` are the
    /// objects that went globally dead this batch *and* were owned here —
    /// they land in this shard's update log so behind-epoch clients are
    /// told to drop them. Epoch bumping, dirty-node BPT rebuilds and
    /// low-water pruning work exactly like
    /// [`apply_updates_bounded`](Self::apply_updates_bounded); shards the
    /// batch never touched are not called at all, so their epochs — and
    /// their clients' staleness — advance independently.
    pub fn publish_partition(
        &self,
        store: ObjectStore,
        ops: &[PartitionOp],
        tombstones: &[pc_rtree::ObjectId],
        client_floor: Option<u64>,
        max_history: u64,
    ) -> u64 {
        let _writer = lock_recover(&self.write);
        let mut next = Snapshot::clone(&self.pin());
        *next.store_mut() = store;
        for op in ops {
            match *op {
                PartitionOp::Insert(id) => {
                    let obj = *next.store().get(id);
                    next.tree_mut().insert(&obj);
                }
                PartitionOp::Delete(id, ref from) => {
                    let removed = next.tree_mut().delete(id, from);
                    debug_assert!(removed, "partition delete must match the indexed entry");
                }
                PartitionOp::Relocate(id, ref from) => {
                    if next.tree_mut().delete(id, from) {
                        let obj = *next.store().get(id);
                        next.tree_mut().insert(&obj);
                    }
                }
            }
        }
        let dirty = next.tree_mut().take_dirty();
        let epoch = next.update_log_mut().bump_epoch();
        for &id in tombstones {
            next.update_log_mut().record_delete(id, epoch);
        }
        for n in dirty {
            next.rebuild_bpt(n);
            next.update_log_mut().record_change(n, epoch);
        }
        let horizon = client_floor
            .unwrap_or(0)
            .max(epoch.saturating_sub(max_history));
        next.update_log_mut().prune(horizon);
        self.snap.publish(next);
        epoch
    }

    /// Swaps in a newer global store **without** bumping the epoch — the
    /// cluster's store-sync for shards an update batch never touched.
    /// Safe exactly because an untouched shard owns none of the batch's
    /// objects: its indexed world (tree, BPTs, update log) is unchanged,
    /// while globally-assigned ids stay resolvable for byte sizing no
    /// matter which shard's snapshot a session pins.
    pub fn refresh_store(&self, store: ObjectStore) {
        let _writer = lock_recover(&self.write);
        let mut next = Snapshot::clone(&self.pin());
        *next.store_mut() = store;
        self.snap.publish(next);
    }
}

/// One shard-local index operation of a routed cluster update batch,
/// derived by the router from before/after tile ownership. Deletes and
/// relocations carry the object's **batch-start** MBR — the rectangle the
/// shard's tree actually indexed — so the entry is found even when a batch
/// moved the object several times before settling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionOp {
    /// The object enters this shard's ownership: insert it at the MBR the
    /// (already updated) store records.
    Insert(pc_rtree::ObjectId),
    /// The object leaves this shard (moved away or went dead): delete the
    /// entry indexed at its batch-start MBR.
    Delete(pc_rtree::ObjectId, pc_geom::Rect),
    /// The object stays owned here but relocated: delete at the
    /// batch-start MBR, re-insert at the store's current one.
    Relocate(pc_rtree::ObjectId, pc_geom::Rect),
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::naive;
    use pc_rtree::{ObjectId, SpatialObject};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn sample_core(n: usize, seed: u64) -> ServerCore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        ServerCore::build(ObjectStore::new(objects), RTreeConfig::small())
    }

    #[test]
    fn core_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerCore>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<Arc<ServerCore>>();
    }

    #[test]
    fn shared_core_answers_queries_from_many_threads() {
        let core = Arc::new(sample_core(400, 11));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    let w = Rect::centered_square(Point::new(0.2 + 0.15 * t as f64, 0.5), 0.2);
                    let got: Vec<ObjectId> = core
                        .direct(&QuerySpec::Range { window: w })
                        .results
                        .iter()
                        .map(|&(id, _)| id)
                        .collect();
                    let mut got = got;
                    got.sort_unstable();
                    (w, got)
                })
            })
            .collect();
        let snap = core.pin();
        for h in handles {
            let (w, got) = h.join().unwrap();
            assert_eq!(got, naive::range_naive(snap.store(), &w));
        }
    }

    #[test]
    fn publish_shares_structure_with_the_previous_snapshot() {
        // The epoch-cost tentpole: a small batch against a large snapshot
        // copies only the spines/segments/BPTs it touches. Everything else
        // is the *same allocation* as the previous epoch.
        let core = sample_core(2000, 17);
        let old = core.pin();
        core.apply_updates(&[
            Update::Insert {
                mbr: Rect::from_point(Point::new(0.41, 0.43)),
                size_bytes: 100,
            },
            Update::Delete(ObjectId(7)),
        ]);
        let new = core.pin();

        let slab = old.tree().slab_len();
        let shared_nodes = old.tree().shared_node_slots(new.tree());
        assert!(
            slab - shared_nodes <= 6 * new.tree().height() as usize + 12,
            "2-update batch copied {} of {slab} nodes",
            slab - shared_nodes
        );
        let bpts = old.bpts().node_count();
        let shared_bpts = old.bpts().shared_bpts(new.bpts());
        assert!(
            bpts - shared_bpts <= 6 * new.tree().height() as usize + 12,
            "2-update batch rebuilt {} of {bpts} BPTs",
            bpts - shared_bpts
        );
        let chunks = old.store().chunk_count();
        let shared_chunks = old.store().shared_chunks(new.store());
        assert!(
            chunks - shared_chunks <= 2,
            "2-update batch copied {} of {chunks} store segments",
            chunks - shared_chunks
        );
        // And both worlds still answer correctly.
        old.tree().validate(2000, false).unwrap();
        new.tree().validate(2000, false).unwrap(); // +1 insert, -1 delete
    }

    #[test]
    fn publish_shares_node_and_bpt_chunks_at_scale() {
        // Chunked-slab extension of the sharing test: with a slab spanning
        // several 1024-slot segments, a small batch must leave most *whole
        // segments* shared by `Arc` between epochs — the publish cost is
        // O(batch · depth) slot copies plus one chunk clone per dirty chunk,
        // independent of the dataset size.
        let core = sample_core(9000, 23);
        let old = core.pin();
        assert!(
            old.tree().node_chunk_count() >= 2,
            "dataset too small to span multiple node chunks"
        );
        core.apply_updates(&[
            Update::Insert {
                mbr: Rect::from_point(Point::new(0.61, 0.39)),
                size_bytes: 100,
            },
            Update::Delete(ObjectId(42)),
        ]);
        let new = core.pin();

        let node_chunks = old.tree().node_chunk_count();
        let copied_slots = old.tree().slab_len() - old.tree().shared_node_slots(new.tree());
        let copied_node_chunks = node_chunks - old.tree().shared_node_chunks(new.tree());
        assert!(copied_node_chunks >= 1, "an update must dirty some chunk");
        assert!(
            copied_node_chunks <= copied_slots.max(1),
            "copied {copied_node_chunks} node chunks for only {copied_slots} dirty slots"
        );

        let bpt_chunks = old.bpts().chunk_count();
        let rebuilt = old.bpts().node_count() - old.bpts().shared_bpts(new.bpts());
        let copied_bpt_chunks = bpt_chunks - old.bpts().shared_chunks(new.bpts());
        assert!(
            copied_bpt_chunks <= rebuilt.max(1),
            "copied {copied_bpt_chunks} BPT chunks for only {rebuilt} rebuilt BPTs"
        );
    }

    #[test]
    fn malformed_batches_never_panic_the_writer() {
        // Deletes/moves naming ids the store never assigned are skipped; a
        // delete of an already-tombstoned object is a no-op too. The epoch
        // still bumps (the batch was applied, however vacuous).
        let core = sample_core(100, 9);
        let epoch = core.apply_updates(&[
            Update::Delete(ObjectId(100_000)),
            Update::Move {
                id: ObjectId(99_999),
                to: Rect::from_point(Point::new(0.5, 0.5)),
            },
            Update::Delete(ObjectId(3)),
            Update::Delete(ObjectId(3)), // double delete: second is a no-op
        ]);
        assert_eq!(epoch, 1);
        let snap = core.pin();
        assert_eq!(snap.store().len(), 100, "unknown ids created nothing");
        assert_eq!(snap.store().live_count(), 99, "exactly one real delete");
        assert!(!snap.store().is_live(ObjectId(3)));
        assert_eq!(
            snap.update_log()
                .deleted_objects()
                .iter()
                .filter(|&&(id, _)| id == ObjectId(3))
                .count(),
            1,
            "the double delete must not duplicate the tombstone"
        );
        snap.tree().validate(99, false).unwrap();
    }

    /// Live objects of a snapshot (tombstones excluded), in id order.
    fn live_objects(snap: &Snapshot) -> Vec<SpatialObject> {
        snap.store().iter_live().copied().collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// CoW equivalence: after an arbitrary update sequence, the
        /// structurally-shared snapshot answers bit-identically to a world
        /// rebuilt from scratch over the same final live set — the tree
        /// validates, direct answers match a fresh bulk-loaded tree and
        /// the naive oracle, a cold remainder resume through the
        /// incrementally-maintained BPTs equals the direct answer, and the
        /// BPT store byte-matches a full from-scratch BPT build over the
        /// same tree.
        #[test]
        fn cow_snapshot_equals_from_scratch_build(
            seed in 0u64..500,
            batches in 1usize..6,
            per_batch in 1usize..8,
        ) {
            let core = sample_core(300, seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0C0A);
            for _ in 0..batches {
                let n = core.pin().store().len() as u32;
                let batch: Vec<Update> = (0..per_batch)
                    .map(|_| match rng.random_range(0..3u32) {
                        0 => Update::Insert {
                            mbr: Rect::from_point(Point::new(
                                rng.random_range(0.0..1.0),
                                rng.random_range(0.0..1.0),
                            )),
                            size_bytes: 500,
                        },
                        1 => Update::Delete(ObjectId(rng.random_range(0..n + 5))),
                        _ => Update::Move {
                            id: ObjectId(rng.random_range(0..n + 5)),
                            to: Rect::from_point(Point::new(
                                rng.random_range(0.0..1.0),
                                rng.random_range(0.0..1.0),
                            )),
                        },
                    })
                    .collect();
                core.apply_updates(&batch);
            }
            let snap = core.pin();
            let live = live_objects(&snap);

            // (1) The shared tree is structurally valid for the live set.
            snap.tree().validate(live.len(), false).unwrap();

            // (2) Direct answers equal a from-scratch bulk load over the
            // same final live set, and the naive oracle.
            let fresh = pc_rtree::RTree::bulk_load(RTreeConfig::small(), &live);
            for (cx, cy, half) in [(0.3, 0.4, 0.25), (0.6, 0.55, 0.2), (0.5, 0.5, 0.6)] {
                let w = Rect::centered_square(Point::new(cx, cy), half);
                let mut got: Vec<ObjectId> = snap
                    .direct(&QuerySpec::Range { window: w })
                    .results
                    .iter()
                    .map(|&(id, _)| id)
                    .collect();
                got.sort_unstable();
                let mut scratch = pc_rtree::query::range_query(&fresh, &w);
                scratch.sort_unstable();
                prop_assert_eq!(&got, &scratch);
                prop_assert_eq!(&got, &naive::range_naive(snap.store(), &w));
            }

            // (3) A cold remainder resume through the incrementally
            // rebuilt BPTs equals the direct answer.
            let root = snap.tree().root();
            if let Some(mbr) = snap.tree().root_mbr() {
                let w = Rect::centered_square(Point::new(0.5, 0.5), 0.35);
                let rq = pc_rtree::proto::RemainderQuery {
                    spec: QuerySpec::Range { window: w },
                    already_found: 0,
                    heap: vec![(
                        0.0,
                        pc_rtree::proto::HeapEntry::Single(pc_rtree::proto::Side::Cell {
                            cell: pc_rtree::proto::CellRef::node_root(root),
                            mbr,
                        }),
                    )],
                };
                let resumed = snap.resume_remainder(&rq, crate::FormMode::COMPACT);
                let mut via_bpt: Vec<ObjectId> =
                    resumed.objects.iter().map(|o| o.id).collect();
                via_bpt.extend(resumed.confirmed.iter().copied());
                via_bpt.sort_unstable();
                let mut via_tree: Vec<ObjectId> = snap
                    .direct(&QuerySpec::Range { window: w })
                    .results
                    .iter()
                    .map(|&(id, _)| id)
                    .collect();
                via_tree.sort_unstable();
                prop_assert_eq!(via_bpt, via_tree);
            }

            // (4) The dirty-node-only BPT maintenance byte-matches a full
            // from-scratch BPT build over the *same* tree.
            let rebuilt = pc_rtree::bpt::BptStore::build(snap.tree());
            prop_assert_eq!(rebuilt.total_aux_bytes(), snap.bpt_bytes());
        }
    }

    #[test]
    fn pinned_snapshot_outlives_a_publish() {
        let core = sample_core(200, 5);
        let old = core.pin();
        let before = old.store().len();
        let epoch = core.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 42,
        }]);
        assert_eq!(epoch, 1);
        // The pinned world is frozen at epoch 0 …
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.store().len(), before);
        // … while the current one moved on.
        let new = core.pin();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.store().len(), before + 1);
    }
}
