//! The shared query core of the server: dataset, R*-tree, BPT store and
//! update log, published as an epoch-stamped immutable [`Snapshot`] behind
//! a [`SnapshotCell`]. Query paths [`pin`](ServerCore::pin) the current
//! snapshot (a refcount bump) and read it with plain `&self` methods, so a
//! `ServerCore` is `Send + Sync` and serves any number of worker threads —
//! the concurrency story of a server that, per Fig. 3, serves many mobile
//! clients at once. Updates ([`ServerCore::apply_updates`]) build the
//! *next* snapshot off to the side and publish it with one pointer swap,
//! so readers never block on churn and a pinned reader always sees one
//! consistent (tree, BPTs, store, epoch) world.
//!
//! The per-client *adaptive* state (§4.3) deliberately lives outside this
//! type, in [`crate::AdaptiveController`]; [`crate::Server`] composes the
//! two and remains the one-stop façade.

use crate::epoch::SnapshotCell;
use crate::forms::{build_shipments, FormMode};
use crate::updates::{Update, UpdateLog};
use pc_rtree::bpt::BptStore;
use pc_rtree::engine::{execute, resume, AccessLog, NoopTracer, Outcome};
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::view::FullView;
use pc_rtree::{ObjectStore, RTree, RTreeConfig};
use std::sync::{Arc, Mutex};

/// One immutable epoch of the server's world: index + data + versioning,
/// no per-client state. All query methods take `&self`; nothing here ever
/// mutates after publication.
#[derive(Clone, Debug)]
pub struct Snapshot {
    tree: RTree,
    bpts: BptStore,
    store: ObjectStore,
    updates: UpdateLog,
}

impl Snapshot {
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    pub(crate) fn tree_mut(&mut self) -> &mut RTree {
        &mut self.tree
    }

    pub fn bpts(&self) -> &BptStore {
        &self.bpts
    }

    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Update/invalidation state (§7 extension).
    pub fn update_log(&self) -> &UpdateLog {
        &self.updates
    }

    pub(crate) fn update_log_mut(&mut self) -> &mut UpdateLog {
        &mut self.updates
    }

    /// The epoch this snapshot was published at (0 = the bulk-loaded seed).
    pub fn epoch(&self) -> u64 {
        self.updates.epoch()
    }

    /// Rebuilds the BPT of one node after its entry set changed.
    pub(crate) fn rebuild_bpt(&mut self, node: pc_rtree::NodeId) {
        self.bpts.rebuild_node(&self.tree, node);
    }

    /// Evaluates a query directly (no caching) — ground truth for the
    /// simulator's metrics and the backend for the PAG/SEM baselines.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        let view = FullView::new(&self.tree, &self.bpts);
        execute(&view, spec, &mut NoopTracer)
    }

    /// Stage ② of Fig. 3 with an explicit form: resumes `Qr` from its heap,
    /// assembles `Rr` (splitting confirmed-cached results from transmitted
    /// ones) and the supporting index `Ir` in `mode`. This is the
    /// policy-free primitive behind [`crate::Server::process_remainder`].
    pub fn resume_remainder(&self, rq: &RemainderQuery, mode: FormMode) -> ServerReply {
        let view = FullView::new(&self.tree, &self.bpts);
        let mut log = AccessLog::default();
        let outcome = resume(&view, rq, &mut log);
        debug_assert!(outcome.remainder.is_none(), "server must finish queries");

        let index = build_shipments(&log, &self.tree, &self.bpts, mode);

        let mut confirmed = Vec::new();
        let mut objects = Vec::new();
        for &(id, cached) in &outcome.results {
            if cached {
                confirmed.push(id);
            } else {
                objects.push(*self.store.get(id));
            }
        }
        ServerReply {
            confirmed,
            objects,
            pairs: outcome.result_pairs,
            index,
            expansions: outcome.expansions,
        }
    }

    /// Auxiliary BPT bytes (§6.4's "4.2 MB for NE" statistic).
    pub fn bpt_bytes(&self) -> u64 {
        self.bpts.total_aux_bytes()
    }
}

/// The shared-state heart of the server: the current [`Snapshot`] plus the
/// writer lock that serializes epoch transitions.
#[derive(Debug)]
pub struct ServerCore {
    snap: SnapshotCell<Snapshot>,
    /// Serializes `apply_updates` callers: each builds its next snapshot
    /// from the one it read, so concurrent writers must not interleave
    /// (last-publish-wins would silently drop a batch).
    write: Mutex<()>,
}

impl Clone for ServerCore {
    fn clone(&self) -> Self {
        ServerCore {
            snap: SnapshotCell::new(Snapshot::clone(&self.pin())),
            write: Mutex::new(()),
        }
    }
}

impl ServerCore {
    /// Bulk loads the index over `store` and prepares the BPTs offline.
    pub fn build(store: ObjectStore, tree_cfg: RTreeConfig) -> Self {
        let objects: Vec<_> = store.iter().copied().collect();
        let tree = RTree::bulk_load(tree_cfg, &objects);
        let bpts = BptStore::build(&tree);
        ServerCore {
            snap: SnapshotCell::new(Snapshot {
                tree,
                bpts,
                store,
                updates: UpdateLog::default(),
            }),
            write: Mutex::new(()),
        }
    }

    /// Pins the current snapshot: an `Arc` that stays valid and internally
    /// consistent across concurrent [`apply_updates`](Self::apply_updates)
    /// publishes. Pin once per query and read everything off the pin.
    pub fn pin(&self) -> Arc<Snapshot> {
        self.snap.pin()
    }

    /// The current epoch (bumped once per applied update batch).
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// [`Snapshot::direct`] on the current snapshot.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        self.pin().direct(spec)
    }

    /// [`Snapshot::resume_remainder`] on the current snapshot.
    pub fn resume_remainder(&self, rq: &RemainderQuery, mode: FormMode) -> ServerReply {
        self.pin().resume_remainder(rq, mode)
    }

    /// [`Snapshot::bpt_bytes`] on the current snapshot.
    pub fn bpt_bytes(&self) -> u64 {
        self.pin().bpt_bytes()
    }

    /// Applies one batch of updates atomically *while queries keep
    /// running*: clones the current snapshot, mutates the clone (store and
    /// R*-tree edits, BPT rebuilds of changed nodes, epoch bump,
    /// changed-node recording) and publishes it with a single pointer
    /// swap. Readers pinned to the old epoch are untouched; the next pin
    /// sees the new epoch. Returns the new epoch. Concurrent callers
    /// serialize on the writer lock.
    pub fn apply_updates(&self, updates: &[Update]) -> u64 {
        let _writer = self.write.lock().unwrap();
        let mut next = Snapshot::clone(&self.pin());
        for u in updates {
            match *u {
                Update::Insert { mbr, size_bytes } => {
                    let id = next.store_mut().push(mbr, size_bytes);
                    let obj = *next.store().get(id);
                    next.tree_mut().insert(&obj);
                }
                Update::Delete(id) => {
                    let mbr = next.store().get(id).mbr;
                    if next.tree_mut().delete(id, &mbr) {
                        next.update_log_mut().record_delete(id);
                    }
                }
                Update::Move { id, to } => {
                    let from = next.store().get(id).mbr;
                    if next.tree_mut().delete(id, &from) {
                        next.store_mut().set_mbr(id, to);
                        let obj = *next.store().get(id);
                        next.tree_mut().insert(&obj);
                    }
                }
            }
        }
        let dirty = next.tree_mut().take_dirty();
        let epoch = next.update_log_mut().bump_epoch();
        for n in dirty {
            next.rebuild_bpt(n);
            next.update_log_mut().record_change(n, epoch);
        }
        self.snap.publish(next);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::naive;
    use pc_rtree::{ObjectId, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn sample_core(n: usize, seed: u64) -> ServerCore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        ServerCore::build(ObjectStore::new(objects), RTreeConfig::small())
    }

    #[test]
    fn core_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerCore>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<Arc<ServerCore>>();
    }

    #[test]
    fn shared_core_answers_queries_from_many_threads() {
        let core = Arc::new(sample_core(400, 11));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    let w = Rect::centered_square(Point::new(0.2 + 0.15 * t as f64, 0.5), 0.2);
                    let got: Vec<ObjectId> = core
                        .direct(&QuerySpec::Range { window: w })
                        .results
                        .iter()
                        .map(|&(id, _)| id)
                        .collect();
                    let mut got = got;
                    got.sort_unstable();
                    (w, got)
                })
            })
            .collect();
        let snap = core.pin();
        for h in handles {
            let (w, got) = h.join().unwrap();
            assert_eq!(got, naive::range_naive(snap.store(), &w));
        }
    }

    #[test]
    fn pinned_snapshot_outlives_a_publish() {
        let core = sample_core(200, 5);
        let old = core.pin();
        let before = old.store().len();
        let epoch = core.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 42,
        }]);
        assert_eq!(epoch, 1);
        // The pinned world is frozen at epoch 0 …
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.store().len(), before);
        // … while the current one moved on.
        let new = core.pin();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.store().len(), before + 1);
    }
}
