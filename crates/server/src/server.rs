//! The server: owns the dataset, the R*-tree, the BPT store and the
//! adaptive controller, and turns remainder queries into replies.

use crate::adaptive::AdaptiveController;
use crate::forms::{build_shipments, FormMode};
use pc_rtree::bpt::BptStore;
use pc_rtree::engine::{execute, resume, AccessLog, NoopTracer, Outcome};
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::view::FullView;
use pc_rtree::{ObjectStore, RTree, RTreeConfig};

/// Identifier the server uses to keep per-client adaptive state.
pub type ClientId = u32;

/// Which proactive-caching variant the server implements (§6.4): full form
/// (FPRO), normal compact form (CPRO) or adaptive d⁺-level (APRO).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormPolicy {
    Full,
    Compact,
    Adaptive,
}

impl FormPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            FormPolicy::Full => "FPRO",
            FormPolicy::Compact => "CPRO",
            FormPolicy::Adaptive => "APRO",
        }
    }
}

/// Server-side configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    pub form: FormPolicy,
    /// Adaptive sensitivity `s` (Table 6.1: 20 %).
    pub sensitivity: f64,
    /// Initial d⁺-level for adaptive clients.
    pub initial_d: u8,
    /// Upper clamp for d (a BPT of a 4 KB page is ~11 deep).
    pub max_d: u8,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            form: FormPolicy::Adaptive,
            sensitivity: 0.2,
            initial_d: 1,
            max_d: 16,
        }
    }
}

/// The mobile application server of Fig. 3.
#[derive(Clone, Debug)]
pub struct Server {
    tree: RTree,
    bpts: BptStore,
    store: ObjectStore,
    cfg: ServerConfig,
    adaptive: AdaptiveController,
    updates: crate::updates::UpdateLog,
}

impl Server {
    /// Bulk loads the index over `store` and prepares the BPTs offline.
    pub fn new(store: ObjectStore, tree_cfg: RTreeConfig, cfg: ServerConfig) -> Self {
        let objects: Vec<_> = store.iter().copied().collect();
        let tree = RTree::bulk_load(tree_cfg, &objects);
        let bpts = BptStore::build(&tree);
        Server {
            tree,
            bpts,
            store,
            cfg,
            adaptive: AdaptiveController::new(cfg.sensitivity, cfg.initial_d, cfg.max_d),
            updates: crate::updates::UpdateLog::default(),
        }
    }

    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    pub(crate) fn tree_mut(&mut self) -> &mut RTree {
        &mut self.tree
    }

    pub(crate) fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Update/invalidation state (§7 extension).
    pub fn update_log(&self) -> &crate::updates::UpdateLog {
        &self.updates
    }

    pub(crate) fn update_log_mut(&mut self) -> &mut crate::updates::UpdateLog {
        &mut self.updates
    }

    /// Rebuilds the BPT of one node after its entry set changed.
    pub(crate) fn rebuild_bpt(&mut self, node: pc_rtree::NodeId) {
        self.bpts.rebuild_node(&self.tree, node);
    }

    pub fn bpts(&self) -> &BptStore {
        &self.bpts
    }

    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Evaluates a query directly (no caching) — ground truth for the
    /// simulator's metrics and the backend for the PAG/SEM baselines.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        let view = FullView::new(&self.tree, &self.bpts);
        execute(&view, spec, &mut NoopTracer)
    }

    /// Stage ② of Fig. 3: resumes `Qr` from its heap, assembles `Rr`
    /// (splitting confirmed-cached results from transmitted ones) and the
    /// supporting index `Ir` in this server's form.
    pub fn process_remainder(&self, client: ClientId, rq: &RemainderQuery) -> ServerReply {
        let view = FullView::new(&self.tree, &self.bpts);
        let mut log = AccessLog::default();
        let outcome = resume(&view, rq, &mut log);
        debug_assert!(outcome.remainder.is_none(), "server must finish queries");

        let mode = match self.cfg.form {
            FormPolicy::Full => FormMode::Full,
            FormPolicy::Compact => FormMode::COMPACT,
            FormPolicy::Adaptive => FormMode::DLevel(self.adaptive.d(client)),
        };
        let index = build_shipments(&log, &self.tree, &self.bpts, mode);

        let mut confirmed = Vec::new();
        let mut objects = Vec::new();
        for &(id, cached) in &outcome.results {
            if cached {
                confirmed.push(id);
            } else {
                objects.push(*self.store.get(id));
            }
        }
        ServerReply {
            confirmed,
            objects,
            pairs: outcome.result_pairs,
            index,
            expansions: outcome.expansions,
        }
    }

    /// Receives a client's periodic fmr report (§4.3); returns the new d.
    pub fn report_fmr(&mut self, client: ClientId, fmr: f64) -> u8 {
        self.adaptive.report(client, fmr)
    }

    /// Current d⁺-level the server would use for this client.
    pub fn client_d(&self, client: ClientId) -> u8 {
        self.adaptive.d(client)
    }

    /// Auxiliary BPT bytes (§6.4's "4.2 MB for NE" statistic).
    pub fn bpt_bytes(&self) -> u64 {
        self.bpts.total_aux_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::naive;
    use pc_rtree::proto::{HeapEntry, Side};
    use pc_rtree::{ObjectId, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_server(n: usize, seed: u64, form: FormPolicy) -> Server {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: rng.random_range(100..2000),
            })
            .collect();
        let store = ObjectStore::new(objects);
        Server::new(
            store,
            RTreeConfig::small(),
            ServerConfig {
                form,
                ..Default::default()
            },
        )
    }

    /// A cold-cache remainder: just the root cell (or root pair for joins).
    fn cold_remainder(server: &Server, spec: QuerySpec) -> RemainderQuery {
        let root = server.tree().root();
        let mbr = server.tree().root_mbr().unwrap();
        let side = Side::Cell {
            cell: pc_rtree::proto::CellRef::node_root(root),
            mbr,
        };
        let entry = if spec.is_join() {
            HeapEntry::Pair(side, side)
        } else {
            HeapEntry::Single(side)
        };
        RemainderQuery {
            spec,
            already_found: 0,
            heap: vec![(spec.key_for(&mbr), entry)],
        }
    }

    #[test]
    fn cold_remainder_range_returns_ground_truth() {
        let server = sample_server(300, 1, FormPolicy::Adaptive);
        let w = Rect::centered_square(Point::new(0.4, 0.6), 0.3);
        let rq = cold_remainder(&server, QuerySpec::Range { window: w });
        let reply = server.process_remainder(7, &rq);
        let mut got: Vec<ObjectId> = reply.objects.iter().map(|o| o.id).collect();
        got.sort_unstable();
        assert_eq!(got, naive::range_naive(server.store(), &w));
        assert!(reply.confirmed.is_empty(), "cold cache has nothing cached");
        assert!(!reply.index.is_empty(), "Ir must accompany Rr");
        assert!(reply.downlink_bytes() > 0);
    }

    #[test]
    fn knn_reply_objects_arrive_in_distance_order() {
        let server = sample_server(300, 2, FormPolicy::Compact);
        let p = Point::new(0.5, 0.5);
        let rq = cold_remainder(&server, QuerySpec::Knn { center: p, k: 8 });
        let reply = server.process_remainder(1, &rq);
        assert_eq!(reply.objects.len(), 8);
        let d: Vec<f64> = reply.objects.iter().map(|o| o.mbr.min_dist(&p)).collect();
        for w in d.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn join_reply_matches_naive() {
        let server = sample_server(120, 3, FormPolicy::Adaptive);
        let dist = 0.03;
        let rq = cold_remainder(&server, QuerySpec::Join { dist });
        let reply = server.process_remainder(1, &rq);
        let mut pairs = reply.pairs.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, naive::join_naive(server.store(), dist));
        // All pair members must be transmitted exactly once.
        let mut ids: Vec<ObjectId> = reply.objects.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        let mut expect: Vec<ObjectId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(ids, expect);
    }

    #[test]
    fn form_policy_sizes_are_ordered() {
        // Same remainder, three form policies: compact ≤ adaptive(d) ≤ full
        // in index bytes.
        let spec = QuerySpec::Knn {
            center: Point::new(0.25, 0.75),
            k: 3,
        };
        let full = sample_server(400, 4, FormPolicy::Full);
        let compact = sample_server(400, 4, FormPolicy::Compact);
        let adaptive = sample_server(400, 4, FormPolicy::Adaptive);
        let b_full = full
            .process_remainder(1, &cold_remainder(&full, spec))
            .index_bytes();
        let b_compact = compact
            .process_remainder(1, &cold_remainder(&compact, spec))
            .index_bytes();
        let b_adaptive = adaptive
            .process_remainder(1, &cold_remainder(&adaptive, spec))
            .index_bytes();
        assert!(b_compact <= b_adaptive, "{b_compact} > {b_adaptive}");
        assert!(b_adaptive <= b_full, "{b_adaptive} > {b_full}");
        assert!(b_compact < b_full, "compact must actually save bytes");
    }

    #[test]
    fn adaptive_d_feedback_changes_future_forms() {
        let mut server = sample_server(400, 5, FormPolicy::Adaptive);
        let spec = QuerySpec::Knn {
            center: Point::new(0.5, 0.5),
            k: 2,
        };
        let before = server
            .process_remainder(9, &cold_remainder(&server, spec))
            .index_bytes();
        // Report a strongly rising fmr twice: d goes up by 2.
        server.report_fmr(9, 0.1);
        server.report_fmr(9, 0.5);
        server.report_fmr(9, 0.9);
        assert!(server.client_d(9) > ServerConfig::default().initial_d);
        let after = server
            .process_remainder(9, &cold_remainder(&server, spec))
            .index_bytes();
        assert!(after >= before, "higher d must not shrink the form");
    }

    #[test]
    fn bpt_bytes_within_twice_index_size() {
        // §4.2: "the additional space required to store the binary
        // partition trees … is no more than two times that of the R-tree
        // index itself."
        let server = sample_server(500, 6, FormPolicy::Adaptive);
        let aux = server.bpt_bytes();
        let index = server.tree().stats().index_bytes;
        assert!(aux > 0);
        assert!(aux <= 2 * index, "aux {aux} vs index {index}");
    }
}
