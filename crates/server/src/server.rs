//! The server: composes the shared [`ServerCore`] (epoch-swapped dataset,
//! R*-tree, BPT store snapshots) with the per-client
//! [`AdaptiveController`], and turns remainder queries into replies. The
//! whole surface — `process_remainder`, `report_fmr`, `direct`, *and*
//! `apply_updates` — takes `&self`, and `Server` is `Send + Sync`, so one
//! server instance behind an `Arc` (or scoped-thread borrows) serves a
//! concurrent fleet of clients while the object set churns.

use crate::adaptive::AdaptiveController;
use crate::core::{ServerCore, Snapshot};
use crate::forms::FormMode;
use pc_rtree::engine::Outcome;
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::{ObjectStore, RTreeConfig};
use std::sync::Arc;

/// Identifier the server uses to keep per-client adaptive state.
pub type ClientId = u32;

/// Which proactive-caching variant the server implements (§6.4): full form
/// (FPRO), normal compact form (CPRO) or adaptive d⁺-level (APRO).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormPolicy {
    Full,
    Compact,
    Adaptive,
}

impl FormPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            FormPolicy::Full => "FPRO",
            FormPolicy::Compact => "CPRO",
            FormPolicy::Adaptive => "APRO",
        }
    }
}

/// Server-side configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    pub form: FormPolicy,
    /// Adaptive sensitivity `s` (Table 6.1: 20 %).
    pub sensitivity: f64,
    /// Initial d⁺-level for adaptive clients.
    pub initial_d: u8,
    /// Upper clamp for d (a BPT of a 4 KB page is ~11 deep).
    pub max_d: u8,
    /// Cap on tracked per-client adaptive states; the least-recently
    /// reporting client is evicted past this, so a long-lived server under
    /// churning client ids keeps a bounded table. Approximate: enforced
    /// per controller shard, so the real bound is within ±16 of this value
    /// (and never below 16, one state per shard).
    pub max_tracked_clients: usize,
    /// Hard cap on retained update-log history, in epochs. Regardless of
    /// client tracking, `apply_updates` prunes change records older than
    /// this many epochs, so the invalidation log stays bounded even with
    /// no connected clients; a client stamped below the pruned horizon is
    /// refused with a full refresh. The fleet low-water mark (minimum
    /// last-synced epoch over live clients) prunes *earlier* whenever the
    /// whole fleet is caught up.
    pub max_update_history: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            form: FormPolicy::Adaptive,
            sensitivity: 0.2,
            initial_d: 1,
            max_d: 16,
            max_tracked_clients: 1 << 16,
            max_update_history: 1024,
        }
    }
}

impl ServerConfig {
    /// Rejects configurations that would silently misbehave instead of
    /// erroring: an adaptive table capped at zero clients evicts every
    /// state the moment it is written, and a zero-epoch history window
    /// full-refreshes every versioned contact. Called by
    /// [`Server::new`]/[`Server::from_core`] (and the cluster's config
    /// check), which panic with the returned message.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_tracked_clients == 0 {
            return Err(
                "ServerConfig::max_tracked_clients must be ≥ 1: a zero-capacity adaptive \
                 table would evict every client state on write"
                    .to_string(),
            );
        }
        if self.max_update_history == 0 {
            return Err(
                "ServerConfig::max_update_history must be ≥ 1: with zero retained epochs \
                 every versioned contact would be refused with a full refresh"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// The mobile application server of Fig. 3.
#[derive(Clone, Debug)]
pub struct Server {
    core: ServerCore,
    cfg: ServerConfig,
    adaptive: AdaptiveController,
}

impl Server {
    /// Bulk loads the index over `store` and prepares the BPTs offline.
    pub fn new(store: ObjectStore, tree_cfg: RTreeConfig, cfg: ServerConfig) -> Self {
        Server::from_core(ServerCore::build(store, tree_cfg), cfg)
    }

    /// Wraps an already-built core (shared-index deployments build the core
    /// once and stand up policy façades around it). Panics on an invalid
    /// configuration ([`ServerConfig::validate`]).
    pub fn from_core(core: ServerCore, cfg: ServerConfig) -> Self {
        // pc-check: allow(no-unwrap, "constructor precondition, documented 'Panics on an invalid configuration' above; no locks or waiters exist yet, so failing fast beats carrying a Result through every deployment path")
        cfg.validate().expect("invalid ServerConfig");
        Server {
            core,
            cfg,
            adaptive: AdaptiveController::new(cfg.sensitivity, cfg.initial_d, cfg.max_d)
                .with_max_clients(cfg.max_tracked_clients),
        }
    }

    /// The shared query core (snapshot cell + writer lock).
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Pins the current [`Snapshot`] (dataset, R*-tree, BPTs, update log at
    /// one epoch). The pin stays valid and self-consistent across
    /// concurrent [`apply_updates`](Server::apply_updates) calls.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.core.pin()
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Evaluates a query directly (no caching) on the current snapshot —
    /// ground truth for the simulator's metrics and the backend for the
    /// PAG/SEM baselines.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        self.core.direct(spec)
    }

    /// The form mode this server would build `Ir` in for `client` right
    /// now — the per-client policy half of `process_remainder`, split out
    /// so batched/remote services can execute resumes directly against a
    /// pinned [`Snapshot`].
    pub fn remainder_mode(&self, client: ClientId) -> FormMode {
        match self.cfg.form {
            FormPolicy::Full => FormMode::Full,
            FormPolicy::Compact => FormMode::COMPACT,
            FormPolicy::Adaptive => FormMode::DLevel(self.adaptive.d(client)),
        }
    }

    /// Stage ② of Fig. 3: resumes `Qr` from its heap, assembles `Rr`
    /// (splitting confirmed-cached results from transmitted ones) and the
    /// supporting index `Ir` in this server's form for this client.
    pub fn process_remainder(&self, client: ClientId, rq: &RemainderQuery) -> ServerReply {
        self.core.resume_remainder(rq, self.remainder_mode(client))
    }

    /// The per-client adaptive controller (d⁺ trajectories + last-synced
    /// epochs feeding the fleet low-water mark).
    pub(crate) fn adaptive(&self) -> &AdaptiveController {
        &self.adaptive
    }

    /// Records the epoch `client` will be synced to after the versioned
    /// contact currently being answered. Transports that bypass
    /// [`Server::process_remainder_versioned`] (the batched service pins
    /// its own snapshot) call this at enqueue time so the fleet low-water
    /// mark stays honest.
    pub fn note_client_epoch(&self, client: ClientId, epoch: u64) {
        self.adaptive.note_epoch(client, epoch);
    }

    /// The epoch `client` last synced to over the versioned protocol, if
    /// it is tracked (`None` for unknown or plain-protocol clients).
    pub fn client_last_epoch(&self, client: ClientId) -> Option<u64> {
        self.adaptive.state(client).last_epoch
    }

    /// The fleet low-water mark: the minimum last-synced epoch over all
    /// tracked versioned clients (`None` with no versioned clients).
    pub fn epoch_low_water(&self) -> Option<u64> {
        self.adaptive.epoch_low_water()
    }

    /// Receives a client's periodic fmr report (§4.3); returns the new d.
    pub fn report_fmr(&self, client: ClientId, fmr: f64) -> u8 {
        self.adaptive.report(client, fmr)
    }

    /// Current d⁺-level the server would use for this client.
    pub fn client_d(&self, client: ClientId) -> u8 {
        self.adaptive.d(client)
    }

    /// Drops a client's adaptive state (e.g. on disconnect); returns
    /// whether anything was tracked.
    pub fn forget_client(&self, client: ClientId) -> bool {
        self.adaptive.forget_client(client)
    }

    /// Number of clients with recorded adaptive state.
    pub fn tracked_clients(&self) -> usize {
        self.adaptive.tracked_clients()
    }

    /// Auxiliary BPT bytes (§6.4's "4.2 MB for NE" statistic).
    pub fn bpt_bytes(&self) -> u64 {
        self.core.bpt_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{cold_remainder, sample_server};
    use pc_geom::{Point, Rect};
    use pc_rtree::naive;
    use pc_rtree::ObjectId;
    use std::sync::Arc;

    #[test]
    fn config_validation_names_the_offending_field() {
        assert!(ServerConfig::default().validate().is_ok());
        let err = ServerConfig {
            max_tracked_clients: 0,
            ..ServerConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("max_tracked_clients"), "{err}");
        let err = ServerConfig {
            max_update_history: 0,
            ..ServerConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("max_update_history"), "{err}");
    }

    #[test]
    #[should_panic(expected = "max_update_history")]
    fn construction_rejects_invalid_configs() {
        let cfg = ServerConfig {
            max_update_history: 0,
            ..ServerConfig::default()
        };
        let base = sample_server(10, 1, FormPolicy::Adaptive);
        let _ = Server::from_core(base.core().clone(), cfg);
    }

    #[test]
    fn server_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<Arc<Server>>();
    }

    #[test]
    fn shared_server_serves_concurrent_clients() {
        // The whole read path — remainder resumption + fmr reports — runs
        // from plain `&Server` on several threads at once, and each client
        // keeps its own adaptive trajectory.
        let server = Arc::new(sample_server(300, 10, FormPolicy::Adaptive));
        let handles: Vec<_> = (0..4u32)
            .map(|client| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let w = Rect::centered_square(Point::new(0.5, 0.5), 0.2);
                    let rq = cold_remainder(&server, QuerySpec::Range { window: w });
                    let reply = server.process_remainder(client, &rq);
                    // Client `client` reports a rising fmr `client` times.
                    for step in 0..client {
                        server.report_fmr(client, 0.1 * (step + 1) as f64 + 0.01);
                    }
                    reply.objects.len()
                })
            })
            .collect();
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "same query, same answer"
        );
        // 0 reports → initial d; k≥2 reports → d rose k−1 times.
        let d0 = ServerConfig::default().initial_d;
        assert_eq!(server.client_d(0), d0);
        assert_eq!(server.client_d(2), d0 + 1);
        assert_eq!(server.client_d(3), d0 + 2);
    }

    #[test]
    fn cold_remainder_range_returns_ground_truth() {
        let server = sample_server(300, 1, FormPolicy::Adaptive);
        let w = Rect::centered_square(Point::new(0.4, 0.6), 0.3);
        let rq = cold_remainder(&server, QuerySpec::Range { window: w });
        let reply = server.process_remainder(7, &rq);
        let mut got: Vec<ObjectId> = reply.objects.iter().map(|o| o.id).collect();
        got.sort_unstable();
        assert_eq!(got, naive::range_naive(server.snapshot().store(), &w));
        assert!(reply.confirmed.is_empty(), "cold cache has nothing cached");
        assert!(!reply.index.is_empty(), "Ir must accompany Rr");
        assert!(reply.downlink_bytes() > 0);
    }

    #[test]
    fn knn_reply_objects_arrive_in_distance_order() {
        let server = sample_server(300, 2, FormPolicy::Compact);
        let p = Point::new(0.5, 0.5);
        let rq = cold_remainder(&server, QuerySpec::Knn { center: p, k: 8 });
        let reply = server.process_remainder(1, &rq);
        assert_eq!(reply.objects.len(), 8);
        let d: Vec<f64> = reply.objects.iter().map(|o| o.mbr.min_dist(&p)).collect();
        for w in d.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn join_reply_matches_naive() {
        let server = sample_server(120, 3, FormPolicy::Adaptive);
        let dist = 0.03;
        let rq = cold_remainder(&server, QuerySpec::Join { dist });
        let reply = server.process_remainder(1, &rq);
        let mut pairs = reply.pairs.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, naive::join_naive(server.snapshot().store(), dist));
        // All pair members must be transmitted exactly once.
        let mut ids: Vec<ObjectId> = reply.objects.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        let mut expect: Vec<ObjectId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(ids, expect);
    }

    #[test]
    fn form_policy_sizes_are_ordered() {
        // Same remainder, three form policies: compact ≤ adaptive(d) ≤ full
        // in index bytes.
        let spec = QuerySpec::Knn {
            center: Point::new(0.25, 0.75),
            k: 3,
        };
        let full = sample_server(400, 4, FormPolicy::Full);
        let compact = sample_server(400, 4, FormPolicy::Compact);
        let adaptive = sample_server(400, 4, FormPolicy::Adaptive);
        let b_full = full
            .process_remainder(1, &cold_remainder(&full, spec))
            .index_bytes();
        let b_compact = compact
            .process_remainder(1, &cold_remainder(&compact, spec))
            .index_bytes();
        let b_adaptive = adaptive
            .process_remainder(1, &cold_remainder(&adaptive, spec))
            .index_bytes();
        assert!(b_compact <= b_adaptive, "{b_compact} > {b_adaptive}");
        assert!(b_adaptive <= b_full, "{b_adaptive} > {b_full}");
        assert!(b_compact < b_full, "compact must actually save bytes");
    }

    #[test]
    fn adaptive_d_feedback_changes_future_forms() {
        let server = sample_server(400, 5, FormPolicy::Adaptive);
        let spec = QuerySpec::Knn {
            center: Point::new(0.5, 0.5),
            k: 2,
        };
        let before = server
            .process_remainder(9, &cold_remainder(&server, spec))
            .index_bytes();
        // Report a strongly rising fmr twice: d goes up by 2.
        server.report_fmr(9, 0.1);
        server.report_fmr(9, 0.5);
        server.report_fmr(9, 0.9);
        assert!(server.client_d(9) > ServerConfig::default().initial_d);
        let after = server
            .process_remainder(9, &cold_remainder(&server, spec))
            .index_bytes();
        assert!(after >= before, "higher d must not shrink the form");
    }

    #[test]
    fn forgotten_client_restarts_from_initial_d() {
        let server = sample_server(200, 7, FormPolicy::Adaptive);
        server.report_fmr(3, 0.1);
        server.report_fmr(3, 0.5);
        assert!(server.client_d(3) > ServerConfig::default().initial_d);
        assert_eq!(server.tracked_clients(), 1);
        assert!(server.forget_client(3));
        assert_eq!(server.client_d(3), ServerConfig::default().initial_d);
        assert_eq!(server.tracked_clients(), 0);
    }

    #[test]
    fn bpt_bytes_within_twice_index_size() {
        // §4.2: "the additional space required to store the binary
        // partition trees … is no more than two times that of the R-tree
        // index itself."
        let server = sample_server(500, 6, FormPolicy::Adaptive);
        let aux = server.bpt_bytes();
        let index = server.snapshot().tree().stats().index_bytes;
        assert!(aux > 0);
        assert!(aux <= 2 * index, "aux {aux} vs index {index}");
    }
}
