//! The socket transport: real frames over TCP loopback replace the
//! in-process call.
//!
//! Server side, [`WireServer`] wraps any `Arc<dyn ServerHandle>` behind a
//! listener: an accept thread spawns one connection thread per client
//! socket, each running a read-frame → decode → dispatch → encode →
//! write-frame loop (std::net + threads; no async runtime exists in this
//! build environment). The flat-combining [`BatchedService`] *is* the
//! batching policy — [`WireServer::spawn_batched`] fronts the server with
//! it, so concurrently arriving remainder frames from different
//! connections coalesce exactly like in-process callers.
//!
//! Client side, [`TcpTransport`] implements [`ServerHandle`]: `call` is a
//! blocking request/reply, and [`TcpTransport::call_pipelined`] sends a
//! burst of frames before waiting on any reply — a dedicated reader thread
//! per connection demultiplexes responses by the echoed `seq`, so uplink,
//! server time and downlink overlap. Each [`ClientId`] gets its own lazily
//! opened connection (mirroring "one channel per mobile client"), and
//! answering a [`Request::Forget`] closes that client's connection — the
//! disconnect the envelope models.
//!
//! Measured bytes: both ends count actual encoded frame lengths alongside
//! the `wire_bytes()` model, and the identity
//! `measured == modeled + itemized framing overhead` is exposed via
//! [`WireTransportStats`] — the live cross-check that the paper-model
//! ledger and the wire are telling the same story.
//!
//! Out-of-band metadata (`core()`, `bootstrap_root`, `apply_updates`,
//! `log_records`) delegates to the wrapped in-process handle: the byte
//! ledger charges nothing for it, so it does not travel the socket.

use crate::server::{ClientId, Server};
use crate::service::{BatchConfig, BatchedService};
use crate::sync_util::{lock_recover, wait_recover};
use crate::transport::{ServerHandle, Transport};
use crate::updates::Update;
use crate::ServerCore;
use pc_geom::Rect;
use pc_rtree::proto::{Request, Response};
use pc_rtree::NodeId;
use pc_wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, request_overhead,
    response_overhead, tag, FrameHeader, FRAME_HEADER_BYTES,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for the server's connection loop.
#[derive(Clone, Copy, Debug)]
pub struct WireServerConfig {
    /// Hard cap on a declared frame body; larger frames are rejected and
    /// the offending connection closed (never an allocation).
    pub max_frame_bytes: u64,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig {
            // Generous for simulated object payloads; tiny against memory.
            max_frame_bytes: 8 << 20,
        }
    }
}

/// Counters the server side keeps about its wire traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireServerStats {
    /// Connections the accept loop handed to a handler thread.
    pub connections_accepted: u64,
    /// Requests decoded, dispatched and answered.
    pub requests_served: u64,
    /// Frames refused for framing violations (bad magic/version/oversize).
    pub frames_rejected: u64,
    /// Frames whose body failed to decode into a request.
    pub requests_aborted: u64,
    /// Total frame bytes read (headers + bodies).
    pub rx_frame_bytes: u64,
    /// Total frame bytes written.
    pub tx_frame_bytes: u64,
}

#[derive(Default)]
struct ServerCounters {
    connections_accepted: AtomicU64,
    requests_served: AtomicU64,
    frames_rejected: AtomicU64,
    requests_aborted: AtomicU64,
    rx_frame_bytes: AtomicU64,
    tx_frame_bytes: AtomicU64,
}

impl ServerCounters {
    fn snapshot(&self) -> WireServerStats {
        // ordering: Relaxed — monotone stats counters; a snapshot is a
        // report, not a synchronization point. Tests read the exact totals
        // only after `shutdown()` joins every serving thread, where the
        // join edge supplies the stronger happens-before.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        WireServerStats {
            connections_accepted: ld(&self.connections_accepted),
            requests_served: ld(&self.requests_served),
            frames_rejected: ld(&self.frames_rejected),
            requests_aborted: ld(&self.requests_aborted),
            rx_frame_bytes: ld(&self.rx_frame_bytes),
            tx_frame_bytes: ld(&self.tx_frame_bytes),
        }
    }
}

/// A serving TCP endpoint over a [`ServerHandle`]. Dropping it (or calling
/// [`WireServer::shutdown`]) stops the accept loop and joins every
/// connection thread — in-flight requests are drained, not dropped, so a
/// fleet's summaries stay exactly mergeable across a shutdown.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    stats: Arc<ServerCounters>,
}

/// Outcome of the stop-aware exact read inside a connection handler.
enum ReadOutcome {
    Ok,
    /// Clean EOF before the first byte of this read.
    Eof,
    /// The stop flag was raised between frames.
    Drained,
    /// Truncation, a wedged peer during drain, or a socket error.
    Failed,
}

/// Reads exactly `buf.len()` bytes, waking every read-timeout tick to
/// check the stop flag. Between frames (`filled == 0`) a raised stop flag
/// drains the connection; mid-structure it keeps reading so a request
/// already on the wire completes (bounded by the peer closing or the
/// 40-tick cap ≈ 10 s against a wedged peer).
fn read_exact_stoppable(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> ReadOutcome {
    let mut filled = 0usize;
    let mut stalled_ticks = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    // Peer closed mid-structure: a truncated frame.
                    ReadOutcome::Failed
                };
            }
            Ok(n) => {
                filled += n;
                stalled_ticks = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ordering: Relaxed — standalone stop flag carrying no
                // data; this loop re-loads it every timeout tick, so cache
                // coherence alone bounds how stale a read can be.
                if stop.load(Ordering::Relaxed) {
                    if filled == 0 {
                        return ReadOutcome::Drained;
                    }
                    stalled_ticks += 1;
                    if stalled_ticks > 40 {
                        return ReadOutcome::Failed;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Ok
}

fn handle_connection(
    mut stream: TcpStream,
    handle: &Arc<dyn ServerHandle>,
    cfg: WireServerConfig,
    stop: &AtomicBool,
    stats: &ServerCounters,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    loop {
        let mut hdr = [0u8; FRAME_HEADER_BYTES as usize];
        match read_exact_stoppable(&mut stream, &mut hdr, stop) {
            ReadOutcome::Ok => {}
            ReadOutcome::Eof | ReadOutcome::Drained => return,
            ReadOutcome::Failed => {
                // ordering: Relaxed — monotone stats counter (see snapshot).
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let header = match FrameHeader::parse(hdr) {
            Ok(h) => h,
            Err(_) => {
                // Bad magic/version: the stream is desynchronized beyond
                // recovery — close it.
                // ordering: Relaxed — monotone stats counter (see snapshot).
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if header.body_len as u64 > cfg.max_frame_bytes || !tag::is_request(header.tag) {
            // ordering: Relaxed — monotone stats counter (see snapshot).
            stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut body = vec![0u8; header.body_len as usize];
        match read_exact_stoppable(&mut stream, &mut body, stop) {
            ReadOutcome::Ok => {}
            _ => {
                // ordering: Relaxed — monotone stats counter (see snapshot).
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // ordering: Relaxed — monotone stats counter (see snapshot).
        stats
            .rx_frame_bytes
            .fetch_add(FRAME_HEADER_BYTES + body.len() as u64, Ordering::Relaxed);
        let req = match decode_request(header.tag, &body) {
            Ok(r) => r,
            Err(_) => {
                // ordering: Relaxed — monotone stats counter (see snapshot).
                stats.requests_aborted.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let resp = handle.call(header.client, req);
        let frame = encode_response(header.client, header.seq, &resp);
        if stream.write_all(&frame).is_err() {
            return;
        }
        // ordering: Relaxed — monotone stats counters (see snapshot).
        stats
            .tx_frame_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        stats.requests_served.fetch_add(1, Ordering::Relaxed);
    }
}

impl WireServer {
    /// Binds `127.0.0.1:0` and starts serving `handle`.
    pub fn spawn(
        handle: Arc<dyn ServerHandle>,
        cfg: WireServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerCounters::default());

        let accept = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("wire-accept".into())
                .spawn(move || {
                    let mut conns: Vec<JoinHandle<()>> = Vec::new();
                    for incoming in listener.incoming() {
                        // ordering: Relaxed — stop flag re-loaded once per
                        // accepted connection; `shutdown` keeps sending wake
                        // connections until this thread exits, so a stale
                        // read here only costs one more wake round.
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        // ordering: Relaxed — monotone stats counter.
                        stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                        let handle = Arc::clone(&handle);
                        let stop = Arc::clone(&stop);
                        let stats = Arc::clone(&stats);
                        let t = std::thread::Builder::new()
                            .name("wire-conn".into())
                            .spawn(move || {
                                handle_connection(stream, &handle, cfg, &stop, &stats);
                            })
                            // pc-check: allow(no-unwrap, "spawn fails only on OS resource exhaustion; panicking the accept thread stops intake while live connections drain — better than silently dropping the accepted socket")
                            .expect("spawn connection thread");
                        conns.push(t);
                        conns.retain(|t| !t.is_finished());
                    }
                    // Close the listener before draining so late shutdown
                    // wake connections are refused instead of queued.
                    drop(listener);
                    // Drain: every connection finishes its in-flight work.
                    for t in conns {
                        let _ = t.join();
                    }
                })?
        };
        Ok(WireServer {
            addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// Serves `server` through a flat-combining [`BatchedService`] — the
    /// connection loop's batching policy. Returns the service too, so the
    /// caller can read [`crate::ServiceStats`] after the run.
    pub fn spawn_batched(
        server: Arc<Server>,
        batch: BatchConfig,
        cfg: WireServerConfig,
    ) -> std::io::Result<(WireServer, Arc<BatchedService<Arc<Server>>>)> {
        let service = Arc::new(BatchedService::new(server, batch));
        let handle: Arc<dyn ServerHandle> = Arc::clone(&service) as Arc<dyn ServerHandle>;
        Ok((WireServer::spawn(handle, cfg)?, service))
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> WireServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, drains every connection and joins all threads.
    pub fn shutdown(&mut self) {
        let Some(t) = self.accept.take() else { return };
        // A single one-shot wake could race a not-yet-visible flag store
        // and leave the loop parked in accept() forever; the wake below
        // therefore retries until the accept thread confirms exit.
        // ordering: Relaxed — every wake forces another load of the stop
        // flag, and coherence makes the store visible within finitely
        // many rounds.
        self.stop.store(true, Ordering::Relaxed);
        while !t.is_finished() {
            // Refused once the accept loop drops the listener to drain.
            let _ = TcpStream::connect(self.addr);
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = t.join();
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// Measured-vs-modeled byte counters for one [`TcpTransport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireTransportStats {
    /// Frames sent / received.
    pub tx_frames: u64,
    pub rx_frames: u64,
    /// Actual encoded frame bytes sent / received (headers included).
    pub tx_bytes: u64,
    pub rx_bytes: u64,
    /// What the `wire_bytes()` model charges for the same traffic.
    pub modeled_tx_bytes: u64,
    pub modeled_rx_bytes: u64,
    /// Itemized framing overhead (frame + section headers).
    pub tx_overhead_bytes: u64,
    pub rx_overhead_bytes: u64,
}

impl WireTransportStats {
    /// The measured-bytes cross-check: every measured byte is either a
    /// modeled byte or itemized framing — no drift in either direction.
    pub fn reconciles(&self) -> bool {
        self.tx_bytes == self.modeled_tx_bytes + self.tx_overhead_bytes
            && self.rx_bytes == self.modeled_rx_bytes + self.rx_overhead_bytes
    }
}

#[derive(Default)]
struct TransportCounters {
    tx_frames: AtomicU64,
    rx_frames: AtomicU64,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
    modeled_tx: AtomicU64,
    modeled_rx: AtomicU64,
    tx_overhead: AtomicU64,
    rx_overhead: AtomicU64,
}

impl TransportCounters {
    /// Accounts one encoded request frame about to hit the wire.
    fn note_tx(&self, frame_len: u64, req: &Request) {
        // ordering: Relaxed — monotone stats counters; readers are reports
        // tolerating inter-counter skew (joins order the final totals).
        self.tx_frames.fetch_add(1, Ordering::Relaxed);
        self.tx_bytes.fetch_add(frame_len, Ordering::Relaxed);
        // ordering: Relaxed — monotone stats counter (as above).
        self.modeled_tx
            .fetch_add(req.wire_bytes(), Ordering::Relaxed);
        // ordering: Relaxed — monotone stats counter (as above).
        self.tx_overhead
            .fetch_add(request_overhead(req), Ordering::Relaxed);
    }

    /// Accounts one decoded response frame read off the wire.
    fn note_rx(&self, frame_len: u64, resp: &Response) {
        // ordering: Relaxed — monotone stats counters; same report-only
        // contract as `note_tx` above.
        self.rx_frames.fetch_add(1, Ordering::Relaxed);
        self.rx_bytes.fetch_add(frame_len, Ordering::Relaxed);
        // ordering: Relaxed — monotone stats counter (as above).
        self.modeled_rx
            .fetch_add(resp.wire_bytes(), Ordering::Relaxed);
        // ordering: Relaxed — monotone stats counter (as above).
        self.rx_overhead
            .fetch_add(response_overhead(resp), Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireTransportStats {
        // ordering: Relaxed — monotone stats counters; a snapshot is a
        // report, not a synchronization point (see note_tx / note_rx).
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        WireTransportStats {
            tx_frames: ld(&self.tx_frames),
            rx_frames: ld(&self.rx_frames),
            tx_bytes: ld(&self.tx_bytes),
            rx_bytes: ld(&self.rx_bytes),
            modeled_tx_bytes: ld(&self.modeled_tx),
            modeled_rx_bytes: ld(&self.modeled_rx),
            tx_overhead_bytes: ld(&self.tx_overhead),
            rx_overhead_bytes: ld(&self.rx_overhead),
        }
    }
}

/// One client's connection: a write half guarded by a mutex (frames are
/// written atomically), a reader thread demultiplexing responses into
/// per-`seq` slots, and a monotone `seq` counter. Multiple in-flight
/// requests pipeline: send N frames, then collect N replies in any order.
struct Conn {
    stream: TcpStream,
    write: Mutex<TcpStream>,
    seq: AtomicU32,
    slots: Mutex<HashMap<u32, Option<Response>>>,
    ready: Condvar,
    dead: AtomicBool,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Conn {
    fn open(
        addr: SocketAddr,
        counters: Arc<TransportCounters>,
        max_frame_bytes: u64,
    ) -> std::io::Result<Arc<Conn>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write = stream.try_clone()?;
        let conn = Arc::new(Conn {
            stream: stream.try_clone()?,
            write: Mutex::new(write),
            seq: AtomicU32::new(0),
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            dead: AtomicBool::new(false),
            reader: Mutex::new(None),
        });
        let reader = {
            let conn = Arc::clone(&conn);
            let mut stream = stream;
            std::thread::Builder::new()
                .name("wire-reader".into())
                .spawn(move || {
                    while let Ok(frame) = read_frame(&mut stream, max_frame_bytes) {
                        let Ok(resp) = decode_response(frame.header.tag, &frame.body) else {
                            break;
                        };
                        counters.note_rx(FRAME_HEADER_BYTES + frame.body.len() as u64, &resp);
                        let mut slots = lock_recover(&conn.slots);
                        slots.insert(frame.header.seq, Some(resp));
                        conn.ready.notify_all();
                        drop(slots);
                    }
                    // Whatever ended the stream (orderly close, reset,
                    // undecodable frame), parked waiters must observe it —
                    // fail fast, never hang on the condvar.
                    conn.mark_dead();
                })?
        };
        *lock_recover(&conn.reader) = Some(reader);
        Ok(conn)
    }

    /// Marks the connection dead and wakes every parked waiter. The flag
    /// flips *under the slots lock*: a waiter holds that lock continuously
    /// from its dead-check to its condvar park, so it either sees the flag
    /// or is parked when `notify_all` fires — the lost-wakeup window of a
    /// lock-free store/notify pair cannot occur.
    fn mark_dead(&self) {
        let _slots = lock_recover(&self.slots);
        // ordering: Relaxed — the slots mutex (held here and by `wait`)
        // carries the happens-before; the atomic only lets `conn()` peek
        // without the lock, where a stale read is benign (one wasted reuse
        // attempt that then fails loudly in `wait`).
        self.dead.store(true, Ordering::Relaxed);
        self.ready.notify_all();
    }

    fn close(&self) {
        self.mark_dead();
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = lock_recover(&self.reader).take() {
            let _ = t.join();
        }
    }
}

/// Client-side response frame ceiling. Unlike the server's request cap
/// (a hostile-input guard), responses come from our own server and scale
/// with result payloads — a cold query against a large cache can ship
/// tens of MB of objects in one reply — so this is only a desync sanity
/// check: a stream whose header promises more than this is corrupt, not
/// busy.
const RESPONSE_FRAME_CAP_BYTES: u64 = 1 << 30;

/// Client-side [`ServerHandle`] over a TCP connection per [`ClientId`].
pub struct TcpTransport {
    addr: SocketAddr,
    /// In-process handle backing the out-of-band metadata surface.
    inner: Arc<dyn ServerHandle>,
    conns: Mutex<HashMap<ClientId, Arc<Conn>>>,
    counters: Arc<TransportCounters>,
    max_frame_bytes: u64,
}

impl TcpTransport {
    /// Connects lazily to `addr`; `inner` answers the metadata surface
    /// (`core()`, `bootstrap_root`, …) that never travels the channel.
    pub fn connect(addr: SocketAddr, inner: Arc<dyn ServerHandle>) -> TcpTransport {
        TcpTransport {
            addr,
            inner,
            conns: Mutex::new(HashMap::new()),
            counters: Arc::new(TransportCounters::default()),
            max_frame_bytes: RESPONSE_FRAME_CAP_BYTES,
        }
    }

    pub fn stats(&self) -> WireTransportStats {
        self.counters.snapshot()
    }

    fn conn(&self, client: ClientId) -> Arc<Conn> {
        let mut conns = lock_recover(&self.conns);
        if let Some(c) = conns.get(&client) {
            // ordering: Relaxed — lock-free peek at the dead flag; a stale
            // `false` merely reuses a dying connection, which then fails
            // loudly in `wait` (see `Conn::mark_dead`).
            if !c.dead.load(Ordering::Relaxed) {
                return Arc::clone(c);
            }
        }
        // pc-check: allow(no-unwrap, "client-side harness precondition: the loopback server runs in this same process, so a refused connect is unrecoverable setup breakage — fail fast at the first call")
        let c = Conn::open(self.addr, Arc::clone(&self.counters), self.max_frame_bytes)
            .expect("wire transport: connect to loopback server");
        conns.insert(client, Arc::clone(&c));
        c
    }

    /// Sends one request frame, returning its `seq` for [`Self::wait`].
    fn send(&self, conn: &Conn, client: ClientId, req: &Request) -> u32 {
        // ordering: Relaxed — `seq` only needs per-connection uniqueness,
        // which fetch_add's atomicity alone provides; replies are matched
        // back to waiters by value under the slots lock.
        let seq = conn.seq.fetch_add(1, Ordering::Relaxed);
        let frame = encode_request(client, seq, req);
        self.counters.note_tx(frame.len() as u64, req);
        // Reserve the slot before the bytes hit the wire: the reader must
        // always find somewhere to park the reply.
        lock_recover(&conn.slots).insert(seq, None);
        let w_result = {
            // The write mutex *is* held across this blocking write by
            // design: it serializes whole frames onto the shared socket,
            // and nothing else ever contends on it mid-request.
            let mut w = lock_recover(&conn.write);
            w.write_all(&frame)
        };
        if w_result.is_err() {
            // The kernel refused the frame (peer reset / shutdown mid-
            // send). Flag the connection so this request's `wait` — and
            // every other parked waiter — fails loudly instead of hanging.
            conn.mark_dead();
        }
        seq
    }

    fn wait(&self, conn: &Conn, seq: u32) -> Response {
        let mut slots = lock_recover(&conn.slots);
        loop {
            if let Some(slot) = slots.get_mut(&seq) {
                if let Some(resp) = slot.take() {
                    slots.remove(&seq);
                    return resp;
                }
            }
            // ordering: Relaxed — read under the slots mutex that
            // `Conn::mark_dead` holds while flipping the flag; the lock
            // supplies the happens-before.
            assert!(
                !conn.dead.load(Ordering::Relaxed),
                "wire transport: connection died awaiting reply seq {seq}"
            );
            slots = wait_recover(&conn.ready, slots);
        }
    }

    /// Pipelined burst: all frames are sent before any reply is awaited,
    /// so the requests overlap on the wire and in the server. Replies come
    /// back in request order regardless of wire completion order.
    pub fn call_pipelined(&self, client: ClientId, reqs: &[Request]) -> Vec<Response> {
        let conn = self.conn(client);
        let seqs: Vec<u32> = reqs.iter().map(|r| self.send(&conn, client, r)).collect();
        let resps: Vec<Response> = seqs.iter().map(|&s| self.wait(&conn, s)).collect();
        if reqs.iter().any(|r| matches!(r, Request::Forget)) {
            self.disconnect(client);
        }
        resps
    }

    /// Closes `client`'s connection (the server handler sees EOF).
    pub fn disconnect(&self, client: ClientId) {
        if let Some(c) = lock_recover(&self.conns).remove(&client) {
            c.close();
        }
    }

    /// Closes every connection.
    pub fn disconnect_all(&self) {
        let conns: Vec<Arc<Conn>> = lock_recover(&self.conns).drain().map(|(_, c)| c).collect();
        for c in conns {
            c.close();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.disconnect_all();
    }
}

impl Transport for TcpTransport {
    fn call(&self, client: ClientId, req: Request) -> Response {
        let conn = self.conn(client);
        let is_forget = matches!(req, Request::Forget);
        let seq = self.send(&conn, client, &req);
        let resp = self.wait(&conn, seq);
        if is_forget {
            // The forget envelope models the disconnect; drop the socket.
            self.disconnect(client);
        }
        resp
    }
}

impl ServerHandle for TcpTransport {
    fn core(&self) -> &ServerCore {
        self.inner.core()
    }

    fn apply_updates(&self, updates: &[Update]) -> u64 {
        // Server-side churn, not client traffic: stays off the channel.
        self.inner.apply_updates(updates)
    }

    fn bootstrap_root(&self) -> (Option<(NodeId, Rect)>, u64) {
        self.inner.bootstrap_root()
    }

    fn log_records(&self) -> usize {
        self.inner.log_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FormPolicy;
    use crate::test_util::{cold_remainder, sample_server};
    use pc_geom::{Point, Rect};
    use pc_rtree::proto::QuerySpec;

    fn served(objects: usize, seed: u64) -> (WireServer, Arc<Server>) {
        let server = Arc::new(sample_server(objects, seed, FormPolicy::Adaptive));
        let handle: Arc<dyn ServerHandle> = Arc::clone(&server) as Arc<dyn ServerHandle>;
        let ws = WireServer::spawn(handle, WireServerConfig::default()).unwrap();
        (ws, server)
    }

    #[test]
    fn round_trip_over_loopback_matches_in_process() {
        let (mut ws, server) = served(200, 5);
        let reference = sample_server(200, 5, FormPolicy::Adaptive);
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        for client in 0..3u32 {
            let spec = QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.4 + 0.1 * client as f64, 0.5), 0.2),
            };
            let rq = cold_remainder(&reference, spec);
            let over_wire = tcp
                .call(client, Request::Remainder(rq.clone()))
                .into_remainder();
            let direct = reference.process_remainder(client, &rq);
            assert_eq!(over_wire, direct);
        }
        let stats = tcp.stats();
        assert!(
            stats.reconciles(),
            "measured != modeled + overhead: {stats:?}"
        );
        assert_eq!(stats.tx_frames, 3);
        assert_eq!(stats.rx_frames, 3);
        drop(tcp);
        ws.shutdown();
        let s = ws.stats();
        assert_eq!(s.requests_served, 3);
        assert_eq!(s.frames_rejected, 0);
    }

    #[test]
    fn pipelined_burst_preserves_request_order() {
        let (mut ws, server) = served(300, 9);
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        // A mixed burst: fmr report, direct query, fmr report. Replies must
        // land in request order even though they pipeline.
        let reqs = vec![
            Request::ReportFmr { fmr: 0.9 },
            Request::Direct(QuerySpec::Knn {
                center: Point::new(0.5, 0.5),
                k: 4,
            }),
            Request::ReportFmr { fmr: 0.9 },
        ];
        let resps = tcp.call_pipelined(7, &reqs);
        assert_eq!(resps.len(), 3);
        resps[0].clone().into_new_d();
        assert_eq!(resps[1].clone().into_direct().results.len(), 4);
        resps[2].clone().into_new_d();
        assert!(tcp.stats().reconciles());
        drop(tcp);
        ws.shutdown();
        assert_eq!(ws.stats().requests_served, 3);
    }

    #[test]
    fn client_disconnect_mid_request_leaves_server_serving() {
        let (mut ws, server) = served(100, 3);
        // Half a frame: a valid header promising 64 body bytes, then EOF.
        let mut s = TcpStream::connect(ws.addr()).unwrap();
        let hdr = FrameHeader {
            tag: tag::REQ_DIRECT,
            flags: 0,
            seq: 0,
            client: 1,
            body_len: 64,
        };
        s.write_all(&hdr.to_bytes()).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
        drop(s); // disconnect mid-request

        // The server must shrug it off and keep serving other clients.
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        let d = tcp
            .call(
                2,
                Request::Direct(QuerySpec::Knn {
                    center: Point::new(0.5, 0.5),
                    k: 2,
                }),
            )
            .into_direct();
        assert_eq!(d.results.len(), 2);
        drop(tcp);
        ws.shutdown();
        let stats = ws.stats();
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.frames_rejected, 1, "the half frame was rejected");
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let (mut ws, server) = served(100, 4);
        let mut s = TcpStream::connect(ws.addr()).unwrap();
        let hdr = FrameHeader {
            tag: tag::REQ_REMAINDER,
            flags: 0,
            seq: 0,
            client: 1,
            body_len: u32::MAX,
        };
        s.write_all(&hdr.to_bytes()).unwrap();
        // The server closes the connection instead of reading 4 GiB.
        let mut buf = [0u8; 1];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection must be closed on an oversized frame");
        drop(s);

        // Other clients are unaffected.
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        assert_eq!(
            tcp.call(9, Request::ReportFmr { fmr: 0.1 })
                .clone()
                .into_new_d(),
            crate::server::ServerConfig::default().initial_d
        );
        drop(tcp);
        ws.shutdown();
        assert_eq!(ws.stats().frames_rejected, 1);
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        let (mut ws, _server) = served(50, 8);
        let mut s = TcpStream::connect(ws.addr()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "bad magic closes");
        drop(s);
        ws.shutdown();
        assert_eq!(ws.stats().frames_rejected, 1);
    }

    #[test]
    fn forget_closes_the_connection_and_server_drains() {
        let (mut ws, server) = served(150, 6);
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        tcp.call(3, Request::ReportFmr { fmr: 0.2 });
        assert_eq!(server.tracked_clients(), 1);
        assert!(tcp.call(3, Request::Forget).into_forgotten());
        assert_eq!(server.tracked_clients(), 0);
        // The next call transparently reconnects.
        tcp.call(3, Request::ReportFmr { fmr: 0.2 });
        assert_eq!(server.tracked_clients(), 1);
        drop(tcp);
        ws.shutdown();
        let stats = ws.stats();
        assert_eq!(stats.requests_served, 3);
        assert_eq!(stats.connections_accepted, 2, "forget dropped the socket");
    }

    #[test]
    fn batched_policy_behind_the_socket_answers_identically() {
        let server = Arc::new(sample_server(250, 12, FormPolicy::Adaptive));
        let reference = sample_server(250, 12, FormPolicy::Adaptive);
        let (mut ws, service) = WireServer::spawn_batched(
            Arc::clone(&server),
            BatchConfig::default(),
            WireServerConfig::default(),
        )
        .unwrap();
        let tcp = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        for client in 0..4u32 {
            let spec = QuerySpec::Knn {
                center: Point::new(0.2 + 0.15 * client as f64, 0.6),
                k: 3,
            };
            let rq = cold_remainder(&reference, spec);
            let got = tcp
                .call(client, Request::Remainder(rq.clone()))
                .into_remainder();
            assert_eq!(got, reference.process_remainder(client, &rq));
        }
        assert_eq!(service.stats().batched_requests, 4);
        drop(tcp);
        ws.shutdown();
    }
}
