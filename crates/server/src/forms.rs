//! Supporting-index construction (§4.2–4.3): turns the engine's access log
//! into per-node [`NodeShipment`]s in the requested form.
//!
//! * **Full form** (FPRO): every entry of each accessed node — "caching the
//!   exact copy of each node".
//! * **Normal compact form** (CPRO): the frontier of the grey subtree,
//!   `CF(n, Qr)` — far-away entries collapse into super entries.
//! * **d⁺-level compact form** (APRO with parameter `d`): each frontier
//!   cell replaced by its `d`-level BPT descendants "or the entries,
//!   whichever come first".

use pc_rtree::bpt::{BptCellKind, BptStore};
use pc_rtree::engine::AccessLog;
use pc_rtree::proto::{CellKind, CellRecord, NodeShipment};
use pc_rtree::{ChildRef, NodeId, RTree};

/// Which form of the supporting index to ship.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormMode {
    /// Full form: all entries of each accessed node.
    Full,
    /// d⁺-level compact form; `DLevel(0)` is the normal compact form.
    DLevel(u8),
}

impl FormMode {
    pub const COMPACT: FormMode = FormMode::DLevel(0);
}

/// Builds the `Ir` shipments for every node the resume touched.
pub fn build_shipments(
    log: &AccessLog,
    tree: &RTree,
    bpts: &BptStore,
    mode: FormMode,
) -> Vec<NodeShipment> {
    log.shipped_nodes()
        .into_iter()
        .map(|node| ship_node(node, log, tree, bpts, mode))
        .collect()
}

fn ship_node(
    node: NodeId,
    log: &AccessLog,
    tree: &RTree,
    bpts: &BptStore,
    mode: FormMode,
) -> NodeShipment {
    let bpt = bpts.get(node);
    let n = tree.node(node);
    let mut cells = Vec::new();
    match mode {
        FormMode::Full => {
            for (code, cell) in bpt.leaf_cells() {
                cells.push(record(code, cell, n));
            }
        }
        FormMode::DLevel(d) => {
            for code in log.frontier(node) {
                for (c, cell) in bpt.descend(code, d) {
                    cells.push(record(c, cell, n));
                }
            }
        }
    }
    NodeShipment {
        node,
        level: n.level,
        parent: n.parent,
        cells,
    }
}

fn record(
    code: pc_rtree::bpt::Code,
    cell: &pc_rtree::bpt::BptCell,
    node: &pc_rtree::Node,
) -> CellRecord {
    let kind = match cell.kind {
        BptCellKind::Internal { .. } => CellKind::Super,
        BptCellKind::Leaf { entry_idx } => match node.entry(entry_idx as usize).child {
            ChildRef::Node(c) => CellKind::Node(c),
            ChildRef::Object(o) => CellKind::Object(o),
        },
    };
    CellRecord {
        code,
        mbr: cell.mbr,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::engine::{execute, AccessLog};
    use pc_rtree::proto::QuerySpec;
    use pc_rtree::view::FullView;
    use pc_rtree::{ObjectId, RTreeConfig, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn tree_with_bpts(n: usize, seed: u64) -> (RTree, BptStore) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 100,
            })
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        let bpts = BptStore::build(&tree);
        (tree, bpts)
    }

    fn logged_query(tree: &RTree, bpts: &BptStore, spec: &QuerySpec) -> AccessLog {
        let view = FullView::new(tree, bpts);
        let mut log = AccessLog::default();
        let _ = execute(&view, spec, &mut log);
        log
    }

    #[test]
    fn full_form_ships_every_entry() {
        let (tree, bpts) = tree_with_bpts(120, 1);
        let spec = QuerySpec::Knn {
            center: Point::new(0.5, 0.5),
            k: 3,
        };
        let log = logged_query(&tree, &bpts, &spec);
        let ships = build_shipments(&log, &tree, &bpts, FormMode::Full);
        assert!(!ships.is_empty());
        for s in &ships {
            let n = tree.node(s.node);
            assert_eq!(s.cells.len(), n.len(), "{} full form", s.node);
            assert!(s.cells.iter().all(|c| !matches!(c.kind, CellKind::Super)));
        }
    }

    #[test]
    fn compact_form_is_never_larger_than_full() {
        let (tree, bpts) = tree_with_bpts(200, 2);
        let spec = QuerySpec::Knn {
            center: Point::new(0.3, 0.7),
            k: 2,
        };
        let log = logged_query(&tree, &bpts, &spec);
        let full = build_shipments(&log, &tree, &bpts, FormMode::Full);
        let compact = build_shipments(&log, &tree, &bpts, FormMode::COMPACT);
        assert_eq!(full.len(), compact.len());
        let total = |v: &[NodeShipment]| v.iter().map(|s| s.cells.len()).sum::<usize>();
        assert!(total(&compact) <= total(&full));
        // A point-ish kNN must leave at least one super entry somewhere
        // (the paper's 40 % saving example).
        assert!(compact
            .iter()
            .any(|s| s.cells.iter().any(|c| matches!(c.kind, CellKind::Super))));
    }

    #[test]
    fn d_levels_interpolate_between_compact_and_full() {
        let (tree, bpts) = tree_with_bpts(250, 3);
        let spec = QuerySpec::Knn {
            center: Point::new(0.6, 0.4),
            k: 1,
        };
        let log = logged_query(&tree, &bpts, &spec);
        let total = |m: FormMode| {
            build_shipments(&log, &tree, &bpts, m)
                .iter()
                .map(|s| s.cells.len())
                .sum::<usize>()
        };
        let mut prev = total(FormMode::COMPACT);
        for d in 1..6 {
            let cur = total(FormMode::DLevel(d));
            assert!(cur >= prev, "d={d} shrank the form");
            prev = cur;
        }
        // Large d degenerates to the full form on accessed subtrees.
        let full = total(FormMode::Full);
        assert!(total(FormMode::DLevel(16)) <= full);
    }

    #[test]
    fn shipments_carry_parent_linkage() {
        let (tree, bpts) = tree_with_bpts(150, 4);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.5, 0.5), 0.3),
        };
        let log = logged_query(&tree, &bpts, &spec);
        for s in build_shipments(&log, &tree, &bpts, FormMode::COMPACT) {
            if s.node == tree.root() {
                assert_eq!(s.parent, None);
            } else {
                assert_eq!(s.parent, tree.node(s.node).parent);
                assert!(s.parent.is_some());
            }
            assert_eq!(s.level, tree.node(s.node).level);
        }
    }

    #[test]
    fn compact_form_covers_the_whole_node() {
        // The shipped antichain must cover every entry (union of MBRs
        // equals the node MBR) so the client view can navigate anywhere.
        let (tree, bpts) = tree_with_bpts(200, 5);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.2, 0.2), 0.2),
        };
        let log = logged_query(&tree, &bpts, &spec);
        for s in build_shipments(&log, &tree, &bpts, FormMode::COMPACT) {
            let union = Rect::union_all(s.cells.iter().map(|c| c.mbr)).unwrap();
            let node_mbr = tree.node(s.node).mbr().unwrap();
            assert_eq!(union, node_mbr, "{}", s.node);
        }
    }
}
