//! Server updates and cache invalidation — the paper's §7 future work
//! ("we plan to investigate the impact of server updates on proactive
//! caching and devise efficient cache invalidation schemes"), built as an
//! epoch-stamped invalidation protocol:
//!
//! * every update batch bumps the server **epoch** and records which index
//!   nodes changed (the R-tree reports its dirty set; BPTs are rebuilt);
//! * a client attaches its last-synced epoch to each remainder query;
//! * a behind-epoch contact is refused ([`VersionedReply::Stale`]) with the
//!   changed-node list: the client drops those items (with descendants,
//!   per the §5 constraint), re-runs stage ① against the cleaned cache and
//!   resubmits — one extra round trip per epoch gap, charged honestly by
//!   the experiments.
//!
//! Updates are **concurrent with queries**: [`Server::apply_updates`]
//! takes `&self`, building the next epoch's snapshot off to the side and
//! publishing it with one pointer swap ([`crate::ServerCore`]), so a fleet
//! keeps reading the old epoch while the object set churns. The version
//! check and the resume of one contact execute against a single pinned
//! snapshot, so an accepted resume can never straddle an epoch boundary.
//!
//! Consistency model: answers computed *at* a contact reflect the epoch
//! they were answered in exactly; purely local answers between contacts
//! may be stale (bounded by contact frequency). This is the standard
//! trade-off for invalidation-on-contact schemes without a downlink
//! broadcast channel.

use crate::server::{ClientId, Server};
use pc_geom::Rect;
use pc_rtree::proto::RemainderQuery;
/// Re-exported from the wire protocol (`pc_rtree::proto`), where the
/// [`Request::RemainderVersioned`](pc_rtree::proto::Request) envelope
/// carries it.
pub use pc_rtree::proto::VersionedReply;
use pc_rtree::{NodeId, ObjectId, SpatialObject};
use std::collections::HashMap;

/// One server-side data change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Update {
    /// A new object appears (id assigned by the store).
    Insert { mbr: Rect, size_bytes: u32 },
    /// An object disappears.
    Delete(ObjectId),
    /// An object relocates.
    Move { id: ObjectId, to: Rect },
}

/// Update/invalidation state carried by each published snapshot.
///
/// History is **bounded**: each epoch publish prunes change records at or
/// below a horizon (the fleet's low-water mark and/or a hard history
/// cap), raising [`low_water`](UpdateLog::low_water). `changed_since` is
/// complete only for `since >= low_water`; a contact stamped below it must
/// be refused with [`VersionedReply::FullRefresh`] instead of a silently
/// truncated invalidation list.
#[derive(Clone, Debug, Default)]
pub struct UpdateLog {
    epoch: u64,
    /// Oldest client epoch `changed_since` can still answer completely.
    /// Everything recorded at or below it has been pruned.
    low_water: u64,
    /// Node → epoch of its most recent change.
    node_changes: HashMap<NodeId, u64>,
    /// Tombstoned objects with the epoch their delete was recorded at (the
    /// store keeps dense ids; the index no longer reaches them).
    deleted: Vec<(ObjectId, u64)>,
}

impl UpdateLog {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Oldest client epoch this log can produce a complete invalidation
    /// list for. Contacts stamped below it get a full-refresh refusal.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Whether `changed_since(since)` would be complete (nothing relevant
    /// was pruned away).
    pub fn can_answer(&self, since: u64) -> bool {
        since >= self.low_water
    }

    /// Nodes changed after `since`, sorted. Complete only when
    /// [`can_answer`](UpdateLog::can_answer) holds for `since`.
    pub fn changed_since(&self, since: u64) -> Vec<NodeId> {
        debug_assert!(
            self.can_answer(since),
            "changed_since({since}) below the low-water mark {} under-reports",
            self.low_water
        );
        let mut out: Vec<NodeId> = self
            .node_changes
            .iter()
            .filter(|(_, &e)| e > since)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    /// Retained tombstones as `(object, delete epoch)` pairs. Bounded by
    /// pruning: tombstones at or below the low-water mark are gone (the
    /// store's liveness bitset remains the ground truth for deadness).
    pub fn deleted_objects(&self) -> &[(ObjectId, u64)] {
        &self.deleted
    }

    /// Number of retained change records (nodes + tombstones) — the
    /// resident-footprint diagnostic the epoch-cost experiment reports.
    pub fn retained_records(&self) -> usize {
        self.node_changes.len() + self.deleted.len()
    }

    /// Drops every record at or below `horizon` and raises the low-water
    /// mark to it. Idempotent; a horizon below the current mark is a no-op.
    pub(crate) fn prune(&mut self, horizon: u64) {
        if horizon <= self.low_water {
            return;
        }
        self.node_changes.retain(|_, &mut e| e > horizon);
        self.deleted.retain(|&(_, e)| e > horizon);
        self.low_water = horizon;
    }

    pub(crate) fn record_delete(&mut self, id: ObjectId, epoch: u64) {
        self.deleted.push((id, epoch));
    }

    pub(crate) fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    pub(crate) fn record_change(&mut self, node: NodeId, epoch: u64) {
        self.node_changes.insert(node, epoch);
    }
}

impl Server {
    /// Applies one batch of updates atomically while queries keep running:
    /// delegates to [`crate::ServerCore::apply_updates_bounded`], which
    /// publishes the next snapshot with a single pointer swap. Returns the
    /// new epoch.
    ///
    /// Update-log history is pruned below the fleet's **low-water mark**
    /// (the minimum last-synced epoch over tracked versioned clients, fed
    /// by every versioned contact) and, regardless of clients, below the
    /// configured [`max_update_history`](crate::ServerConfig) epochs — so
    /// a long-running server under sustained churn keeps a bounded
    /// invalidation log. Clients that fall below the pruned horizon get a
    /// [`VersionedReply::FullRefresh`] refusal at their next contact.
    pub fn apply_updates(&self, updates: &[Update]) -> u64 {
        self.core().apply_updates_bounded(
            updates,
            self.adaptive().epoch_low_water(),
            self.config().max_update_history,
        )
    }

    /// The version-aware stage ② of the invalidation protocol. The epoch
    /// check and (when current) the resume both run against one pinned
    /// snapshot, so the answer is exact for the epoch it reports.
    ///
    /// Conservative rule: *any* epoch gap refuses the resume. A weaker rule
    /// (refuse only when the heap references changed nodes) would keep the
    /// resume sound, but the client's stage-① portion `Rs` was computed
    /// against stale cached leaves the heap never mentions — the answer
    /// could serve deleted or moved objects at a server contact. Refusing
    /// forces the client to invalidate and re-run stage ① against cleaned
    /// state, making every contact answer current; the price is one extra
    /// round trip per (client × update-epoch) gap, which the experiments
    /// charge honestly.
    ///
    /// A client stamped **below the log's low-water mark** cannot be given
    /// a complete invalidation list (that history was pruned); it gets a
    /// [`VersionedReply::FullRefresh`] and must drop its cache and re-sync
    /// — never a silently truncated list.
    ///
    /// Every contact also records the epoch this client will sync to in
    /// the adaptive table, which is what keeps the fleet low-water mark —
    /// and thus pruning — honest.
    pub fn process_remainder_versioned(
        &self,
        client: ClientId,
        rq: &RemainderQuery,
        client_epoch: u64,
    ) -> VersionedReply {
        let snap = self.core().pin();
        self.note_client_epoch(client, snap.epoch());
        if !snap.update_log().can_answer(client_epoch) {
            return VersionedReply::FullRefresh {
                epoch: snap.epoch(),
            };
        }
        let invalidate = snap.update_log().changed_since(client_epoch);
        if !invalidate.is_empty() {
            return VersionedReply::Stale {
                invalidate,
                epoch: snap.epoch(),
            };
        }
        VersionedReply::Fresh {
            reply: snap.resume_remainder(rq, self.remainder_mode(client)),
            invalidate,
            epoch: snap.epoch(),
        }
    }

    /// A versioned direct query for baselines/ground truth after updates;
    /// evaluated on one pinned snapshot.
    pub fn direct_current(&self, spec: &pc_rtree::proto::QuerySpec) -> Vec<SpatialObject> {
        let snap = self.core().pin();
        snap.direct(spec)
            .results
            .iter()
            .map(|&(id, _)| *snap.store().get(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use pc_geom::Point;
    use pc_rtree::naive;
    use pc_rtree::proto::{CellRef, HeapEntry, QuerySpec, Side};
    use pc_rtree::{ObjectStore, RTreeConfig};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn sample_server(n: usize, seed: u64) -> Server {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        Server::new(
            ObjectStore::new(objects),
            RTreeConfig::small(),
            ServerConfig::default(),
        )
    }

    #[test]
    fn updates_bump_epoch_and_record_changes() {
        let server = sample_server(200, 1);
        let snap = server.snapshot();
        assert_eq!(snap.update_log().epoch(), 0);
        let e1 = server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 777,
        }]);
        assert_eq!(e1, 1);
        let now = server.snapshot();
        assert!(!now.update_log().changed_since(0).is_empty());
        assert!(now.update_log().changed_since(1).is_empty());
        // The pre-update pin still sees the unchanged world.
        assert_eq!(snap.epoch(), 0);
        assert!(snap.update_log().changed_since(0).is_empty());
    }

    #[test]
    fn queries_reflect_updates() {
        let server = sample_server(200, 2);
        let w = Rect::centered_square(Point::new(0.5, 0.5), 0.1);
        let before = naive::range_naive(server.snapshot().store(), &w).len();
        // Drop everything currently in the window, then add one point.
        let victims: Vec<Update> = naive::range_naive(server.snapshot().store(), &w)
            .into_iter()
            .map(Update::Delete)
            .collect();
        server.apply_updates(&victims);
        server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 123,
        }]);
        let outcome = server.direct(&QuerySpec::Range { window: w });
        assert_eq!(
            outcome.results.len(),
            1,
            "was {before}, all deleted, one added"
        );
        let snap = server.snapshot();
        snap.tree()
            .validate(snap.tree().object_count(), false)
            .unwrap();
    }

    #[test]
    fn moves_relocate_objects() {
        let server = sample_server(150, 3);
        let id = ObjectId(0);
        let to = Rect::from_point(Point::new(0.99, 0.99));
        server.apply_updates(&[Update::Move { id, to }]);
        let knn = server.direct(&QuerySpec::Knn {
            center: Point::new(0.99, 0.99),
            k: 1,
        });
        assert_eq!(knn.results[0].0, id, "moved object is now the nearest");
    }

    #[test]
    fn stale_remainder_is_refused() {
        let server = sample_server(200, 4);
        server.apply_updates(&[Update::Delete(ObjectId(5))]);
        // A remainder whose heap references one of the nodes the delete
        // changed must be refused when the client is behind (epoch 0).
        // (A remainder through *unchanged* nodes stays resumable — the
        // companion test below — so we target a changed leaf explicitly.)
        let snap = server.snapshot();
        let changed = snap.update_log().changed_since(0);
        assert!(!changed.is_empty());
        let leaf = *changed
            .iter()
            .find(|n| snap.tree().node(**n).is_leaf())
            .expect("delete dirties its leaf");
        let mbr = snap.tree().node(leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, epoch } => {
                assert_eq!(epoch, 1);
                assert!(invalidate.contains(&leaf));
            }
            other => panic!("must refuse a stale resume, got {other:?}"),
        }
        // With the current epoch it goes through.
        match server.process_remainder_versioned(0, &rq, 1) {
            VersionedReply::Fresh {
                reply, invalidate, ..
            } => {
                assert!(invalidate.is_empty());
                assert!(!reply.index.is_empty());
            }
            other => panic!("current epoch must be fresh, got {other:?}"),
        }
    }

    #[test]
    fn any_epoch_gap_is_refused_even_over_unchanged_nodes() {
        // Conservative protocol: the client's stage-① answer may have used
        // stale leaves the heap never mentions, so *any* gap refuses.
        let server = sample_server(400, 5);
        let far = server
            .direct(&QuerySpec::Knn {
                center: Point::new(0.95, 0.95),
                k: 1,
            })
            .results[0]
            .0;
        server.apply_updates(&[Update::Delete(far)]);
        let snap = server.snapshot();
        let changed: HashSet<NodeId> = snap.update_log().changed_since(0).into_iter().collect();
        let unchanged_leaf = snap
            .tree()
            .node_ids()
            .into_iter()
            .find(|n| snap.tree().node(*n).is_leaf() && !changed.contains(n))
            .expect("some leaf unchanged");
        let mbr = snap.tree().node(unchanged_leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(unchanged_leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, .. } => {
                assert!(!invalidate.is_empty());
            }
            other => panic!("behind-epoch contact must be refused, got {other:?}"),
        }
        match server.process_remainder_versioned(0, &rq, snap.epoch()) {
            VersionedReply::Fresh { invalidate, .. } => assert!(invalidate.is_empty()),
            other => panic!("current epoch must be fresh, got {other:?}"),
        }
    }

    #[test]
    fn history_cap_prunes_the_log_and_refuses_ancient_clients() {
        let cfg = ServerConfig {
            max_update_history: 3,
            ..ServerConfig::default()
        };
        let server = Server::from_core(
            crate::ServerCore::build(
                pc_rtree::ObjectStore::new(
                    (0..200)
                        .map(|i| SpatialObject {
                            id: ObjectId(i),
                            mbr: Rect::from_point(Point::new(
                                (i % 20) as f64 * 0.05,
                                (i / 20) as f64 * 0.1,
                            )),
                            size_bytes: 100,
                        })
                        .collect(),
                ),
                RTreeConfig::small(),
            ),
            cfg,
        );
        for i in 0..10u32 {
            server.apply_updates(&[Update::Delete(ObjectId(i))]);
        }
        let log_snap = server.snapshot();
        let log = log_snap.update_log();
        assert_eq!(log.epoch(), 10);
        assert_eq!(log.low_water(), 7, "epoch 10 minus 3 epochs of history");
        assert!(
            log.deleted_objects().iter().all(|&(_, e)| e > 7),
            "tombstones at or below the horizon are pruned"
        );
        assert!(log.retained_records() > 0);
        assert!(log.can_answer(7) && !log.can_answer(6));

        // A client synced within the window still gets a Stale with a
        // complete list; one below the horizon gets a FullRefresh.
        let root = log_snap.tree().root();
        let mbr = log_snap.tree().root_mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(root),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(1, &rq, 8) {
            VersionedReply::Stale { invalidate, epoch } => {
                assert_eq!(epoch, 10);
                assert!(!invalidate.is_empty());
            }
            other => panic!("in-window client must get Stale, got {other:?}"),
        }
        match server.process_remainder_versioned(2, &rq, 2) {
            VersionedReply::FullRefresh { epoch } => assert_eq!(epoch, 10),
            other => panic!("below-horizon client must get FullRefresh, got {other:?}"),
        }
        // Both contacts fed the fleet low-water mark.
        assert_eq!(server.client_last_epoch(1), Some(10));
        assert_eq!(server.client_last_epoch(2), Some(10));
        assert_eq!(server.epoch_low_water(), Some(10));
    }

    #[test]
    fn fleet_low_water_mark_prunes_ahead_of_the_history_cap() {
        // Two clients catch up to the current epoch; the next publish can
        // prune everything below it even though the history cap (default
        // 1024) is nowhere near.
        let server = sample_server(300, 7);
        server.apply_updates(&[Update::Delete(ObjectId(1))]);
        server.apply_updates(&[Update::Delete(ObjectId(2))]);
        let rq = {
            let snap = server.snapshot();
            let root = snap.tree().root();
            let mbr = snap.tree().root_mbr().unwrap();
            RemainderQuery {
                spec: QuerySpec::Range { window: mbr },
                already_found: 0,
                heap: vec![(
                    0.0,
                    HeapEntry::Single(Side::Cell {
                        cell: CellRef::node_root(root),
                        mbr,
                    }),
                )],
            }
        };
        // Both clients sync to epoch 2 (a Stale reply updates them).
        for client in [5u32, 6] {
            match server.process_remainder_versioned(client, &rq, 0) {
                VersionedReply::Stale { epoch, .. } => assert_eq!(epoch, 2),
                other => panic!("expected Stale, got {other:?}"),
            }
        }
        assert_eq!(server.epoch_low_water(), Some(2));
        assert!(server.snapshot().update_log().retained_records() > 0);
        // The next publish prunes below the fleet mark.
        server.apply_updates(&[Update::Delete(ObjectId(3))]);
        let snap = server.snapshot();
        assert_eq!(snap.update_log().low_water(), 2);
        assert!(
            snap.update_log()
                .deleted_objects()
                .iter()
                .all(|&(_, e)| e > 2),
            "records at or below the fleet mark are pruned"
        );
        // A brand-new client pinning the current snapshot is never below
        // the horizon (the mark is ≤ the epoch current at prune time).
        match server.process_remainder_versioned(9, &rq, snap.epoch()) {
            VersionedReply::Fresh { .. } => {}
            other => panic!("current-epoch client must be Fresh, got {other:?}"),
        }
        // A disconnect releases the client's pin on the mark.
        assert!(server.forget_client(5));
        assert!(server.forget_client(6));
    }

    #[test]
    fn updates_run_concurrently_with_queries() {
        // The point of the epoch swap: `apply_updates` takes `&self` and
        // runs while reader threads hammer the query path. No reader ever
        // observes a torn world (each pins one snapshot per query).
        let server = sample_server(300, 6);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let server = &server;
                let stop = &stop;
                scope.spawn(move || {
                    let w = Rect::centered_square(Point::new(0.2 + 0.2 * t as f64, 0.5), 0.25);
                    // ordering: Acquire pairs with the Release store after
                    // the last update, so readers that observe `stop` also
                    // observe all 40 published epochs.
                    while !stop.load(Ordering::Acquire) {
                        let snap = server.snapshot();
                        let got = snap.direct(&QuerySpec::Range { window: w });
                        // The naive oracle skips tombstoned objects via the
                        // store's liveness bitset.
                        let want = naive::range_naive(snap.store(), &w);
                        let mut ids: Vec<ObjectId> =
                            got.results.iter().map(|&(id, _)| id).collect();
                        ids.sort_unstable();
                        assert_eq!(ids, want, "pinned snapshot answered inconsistently");
                    }
                });
            }
            let mut rng = SmallRng::seed_from_u64(99);
            for _ in 0..40 {
                let update = match rng.random_range(0..3u32) {
                    0 => Update::Insert {
                        mbr: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                        size_bytes: 500,
                    },
                    1 => Update::Delete(ObjectId(rng.random_range(0..250))),
                    _ => Update::Move {
                        id: ObjectId(rng.random_range(0..250)),
                        to: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                    },
                };
                server.apply_updates(&[update]);
            }
            // ordering: Release publishes "all updates applied" to the
            // Acquire loads in the reader loops above.
            stop.store(true, Ordering::Release);
        });
        assert_eq!(server.snapshot().epoch(), 40);
    }

    /// The leaf of `id` in `snap`'s tree (`None` once it is deleted there).
    fn leaf_of(snap: &crate::Snapshot, id: ObjectId) -> Option<NodeId> {
        snap.tree().node_ids().into_iter().find(|&n| {
            let node = snap.tree().node(n);
            node.is_leaf() && node.children().contains(&pc_rtree::ChildRef::Object(id))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Pruning never turns into silent truncation: for any client epoch
        /// at or above the log's low-water mark, `changed_since` still
        /// contains the old leaf of every moved/deleted object since that
        /// epoch; for any epoch *below* the mark the versioned path refuses
        /// with `FullRefresh` instead of answering from pruned history.
        #[test]
        fn pruned_changed_since_never_under_reports(
            seed in 0u64..300,
            batches in 2usize..7,
            per_batch in 1usize..4,
            history in 1u64..4,
        ) {
            let cfg = ServerConfig {
                max_update_history: history,
                ..ServerConfig::default()
            };
            let base = sample_server(200, seed);
            let server = Server::from_core(base.core().clone(), cfg);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFACADE);
            // (pin epoch, victim leaves at that pin) per batch.
            let mut watch: Vec<(u64, Vec<NodeId>)> = Vec::new();
            for _ in 0..batches {
                let old = server.core().pin();
                let n_live = old.store().len() as u32;
                let updates: Vec<Update> = (0..per_batch)
                    .map(|_| match rng.random_range(0..3u32) {
                        0 => Update::Insert {
                            mbr: Rect::from_point(Point::new(
                                rng.random_range(0.0..1.0),
                                rng.random_range(0.0..1.0),
                            )),
                            size_bytes: 700,
                        },
                        1 => Update::Delete(ObjectId(rng.random_range(0..n_live))),
                        _ => Update::Move {
                            id: ObjectId(rng.random_range(0..n_live)),
                            to: Rect::from_point(Point::new(
                                rng.random_range(0.0..1.0),
                                rng.random_range(0.0..1.0),
                            )),
                        },
                    })
                    .collect();
                let victims: Vec<NodeId> = updates
                    .iter()
                    .filter_map(|u| match *u {
                        Update::Delete(id) | Update::Move { id, .. } => leaf_of(&old, id),
                        Update::Insert { .. } => None,
                    })
                    .collect();
                watch.push((old.epoch(), victims));
                server.apply_updates(&updates);
            }
            let snap = server.snapshot();
            let log = snap.update_log();
            let current = snap.epoch();
            prop_assert_eq!(log.low_water(), current.saturating_sub(history));
            for (since, victims) in watch {
                if log.can_answer(since) {
                    let changed: HashSet<NodeId> =
                        log.changed_since(since).into_iter().collect();
                    for leaf in victims {
                        prop_assert!(changed.contains(&leaf));
                    }
                } else {
                    // Below the mark: the protocol refuses outright.
                    let root = snap.tree().root();
                    let mbr = snap.tree().root_mbr().unwrap();
                    let rq = RemainderQuery {
                        spec: QuerySpec::Range { window: mbr },
                        already_found: 0,
                        heap: vec![(
                            0.0,
                            HeapEntry::Single(Side::Cell {
                                cell: CellRef::node_root(root),
                                mbr,
                            }),
                        )],
                    };
                    match server.process_remainder_versioned(0, &rq, since) {
                        VersionedReply::FullRefresh { epoch } => {
                            prop_assert_eq!(epoch, current);
                        }
                        other => {
                            prop_assert!(
                                false,
                                "below-mark epoch {} must be refused, got {:?}",
                                since,
                                other
                            );
                        }
                    }
                }
            }
        }

        /// Readers pinned during an `apply_updates` storm always observe a
        /// consistent (tree, BPT, epoch) triple, and `changed_since` never
        /// under-reports: the old-snapshot leaf of every moved or deleted
        /// object is in the changed-node set a behind-epoch client would
        /// be told to invalidate.
        #[test]
        fn snapshot_storm_keeps_readers_consistent_and_changed_since_complete(
            seed in 0u64..200,
            batches in 2usize..8,
            per_batch in 1usize..4,
        ) {
            let server = sample_server(220, seed);
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                // Two readers pinning snapshots mid-storm: the (tree, BPT,
                // epoch) triple must be coherent — a cold resume through
                // the pinned BPTs equals the pinned tree's direct answer,
                // and epochs never run backwards within one reader.
                for _ in 0..2 {
                    let server = &server;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut last_epoch = 0u64;
                        loop {
                            // ordering: Acquire pairs with the Release store
                            // after the last batch — a reader that sees
                            // `stop` runs one final full-consistency pass.
                            let done = stop.load(Ordering::Acquire);
                            let snap = server.snapshot();
                            assert!(snap.epoch() >= last_epoch, "epoch ran backwards");
                            last_epoch = snap.epoch();
                            let root = snap.tree().root();
                            let mbr = snap.tree().root_mbr().unwrap();
                            let w = Rect::centered_square(Point::new(0.5, 0.5), 0.3);
                            let rq = RemainderQuery {
                                spec: QuerySpec::Range { window: w },
                                already_found: 0,
                                heap: vec![(
                                    0.0,
                                    HeapEntry::Single(Side::Cell {
                                        cell: CellRef::node_root(root),
                                        mbr,
                                    }),
                                )],
                            };
                            let resumed =
                                snap.resume_remainder(&rq, crate::FormMode::COMPACT);
                            let mut via_bpt: Vec<ObjectId> =
                                resumed.objects.iter().map(|o| o.id).collect();
                            via_bpt.extend(resumed.confirmed.iter().copied());
                            via_bpt.sort_unstable();
                            let mut via_tree: Vec<ObjectId> = snap
                                .direct(&QuerySpec::Range { window: w })
                                .results
                                .iter()
                                .map(|&(id, _)| id)
                                .collect();
                            via_tree.sort_unstable();
                            assert_eq!(
                                via_bpt, via_tree,
                                "BPTs and tree of one pinned snapshot disagree"
                            );
                            if done {
                                break;
                            }
                        }
                    });
                }

                let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15EA5E);
                for _ in 0..batches {
                    let old = server.core().pin();
                    let n_live = old.store().len() as u32;
                    let updates: Vec<Update> = (0..per_batch)
                        .map(|_| match rng.random_range(0..3u32) {
                            0 => Update::Insert {
                                mbr: Rect::from_point(Point::new(
                                    rng.random_range(0.0..1.0),
                                    rng.random_range(0.0..1.0),
                                )),
                                size_bytes: 700,
                            },
                            1 => Update::Delete(ObjectId(rng.random_range(0..n_live))),
                            _ => Update::Move {
                                id: ObjectId(rng.random_range(0..n_live)),
                                to: Rect::from_point(Point::new(
                                    rng.random_range(0.0..1.0),
                                    rng.random_range(0.0..1.0),
                                )),
                            },
                        })
                        .collect();
                    // Old-snapshot leaves of the victims, *before* the batch.
                    let victims: Vec<NodeId> = updates
                        .iter()
                        .filter_map(|u| match *u {
                            Update::Delete(id) | Update::Move { id, .. } => {
                                leaf_of(&old, id)
                            }
                            Update::Insert { .. } => None,
                        })
                        .collect();
                    server.apply_updates(&updates);
                    let changed: HashSet<NodeId> = server
                        .snapshot()
                        .update_log()
                        .changed_since(old.epoch())
                        .into_iter()
                        .collect();
                    for leaf in victims {
                        assert!(
                            changed.contains(&leaf),
                            "changed_since under-reports: leaf {leaf:?} held a \
                             moved/deleted object but is not in the invalidation set"
                        );
                    }
                }
                // ordering: Release publishes "all batches applied" to the
                // Acquire loads in the reader loops above.
                stop.store(true, Ordering::Release);
            });
        }
    }
}
