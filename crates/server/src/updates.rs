//! Server updates and cache invalidation — the paper's §7 future work
//! ("we plan to investigate the impact of server updates on proactive
//! caching and devise efficient cache invalidation schemes"), built as an
//! epoch-stamped invalidation protocol:
//!
//! * every update batch bumps the server **epoch** and records which index
//!   nodes changed (the R-tree reports its dirty set; BPTs are rebuilt);
//! * a client attaches its last-synced epoch to each remainder query;
//! * a behind-epoch contact is refused ([`VersionedReply::Stale`]) with the
//!   changed-node list: the client drops those items (with descendants,
//!   per the §5 constraint), re-runs stage ① against the cleaned cache and
//!   resubmits — one extra round trip per epoch gap, charged honestly by
//!   the experiments.
//!
//! Consistency model: answers computed *at* a contact reflect the current
//! server state exactly; purely local answers between contacts may be
//! stale (bounded by contact frequency). This is the standard trade-off
//! for invalidation-on-contact schemes without a downlink broadcast
//! channel.

use crate::server::{ClientId, Server};
use pc_geom::Rect;
use pc_rtree::proto::RemainderQuery;
/// Re-exported from the wire protocol (`pc_rtree::proto`), where the
/// [`Request::RemainderVersioned`](pc_rtree::proto::Request) envelope
/// carries it.
pub use pc_rtree::proto::VersionedReply;
use pc_rtree::{NodeId, ObjectId, SpatialObject};
use std::collections::HashMap;

/// One server-side data change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Update {
    /// A new object appears (id assigned by the store).
    Insert { mbr: Rect, size_bytes: u32 },
    /// An object disappears.
    Delete(ObjectId),
    /// An object relocates.
    Move { id: ObjectId, to: Rect },
}

/// Update/invalidation state bolted onto a [`Server`].
#[derive(Clone, Debug, Default)]
pub struct UpdateLog {
    epoch: u64,
    /// Node → epoch of its most recent change.
    node_changes: HashMap<NodeId, u64>,
    /// Tombstoned objects (the store keeps dense ids; the index no longer
    /// reaches them).
    deleted: Vec<ObjectId>,
}

impl UpdateLog {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes changed after `since`, sorted.
    pub fn changed_since(&self, since: u64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .node_changes
            .iter()
            .filter(|(_, &e)| e > since)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    pub fn deleted_objects(&self) -> &[ObjectId] {
        &self.deleted
    }
}

impl Server {
    /// Applies one batch of updates atomically: mutates the store and the
    /// R*-tree, rebuilds the BPTs of changed nodes, bumps the epoch and
    /// records the changed-node set. Returns the new epoch.
    pub fn apply_updates(&mut self, updates: &[Update]) -> u64 {
        let core = self.core_mut();
        for u in updates {
            match *u {
                Update::Insert { mbr, size_bytes } => {
                    let id = core.store_mut().push(mbr, size_bytes);
                    let obj = *core.store().get(id);
                    core.tree_mut().insert(&obj);
                }
                Update::Delete(id) => {
                    let mbr = core.store().get(id).mbr;
                    if core.tree_mut().delete(id, &mbr) {
                        core.update_log_mut().deleted.push(id);
                    }
                }
                Update::Move { id, to } => {
                    let from = core.store().get(id).mbr;
                    if core.tree_mut().delete(id, &from) {
                        core.store_mut().set_mbr(id, to);
                        let obj = *core.store().get(id);
                        core.tree_mut().insert(&obj);
                    }
                }
            }
        }
        let dirty = core.tree_mut().take_dirty();
        core.update_log_mut().epoch += 1;
        let epoch = core.update_log().epoch;
        for n in dirty {
            core.rebuild_bpt(n);
            core.update_log_mut().node_changes.insert(n, epoch);
        }
        epoch
    }

    /// The version-aware stage ② of the invalidation protocol.
    ///
    /// Conservative rule: *any* epoch gap refuses the resume. A weaker rule
    /// (refuse only when the heap references changed nodes) would keep the
    /// resume sound, but the client's stage-① portion `Rs` was computed
    /// against stale cached leaves the heap never mentions — the answer
    /// could serve deleted or moved objects at a server contact. Refusing
    /// forces the client to invalidate and re-run stage ① against cleaned
    /// state, making every contact answer current; the price is one extra
    /// round trip per (client × update-epoch) gap, which the experiments
    /// charge honestly.
    pub fn process_remainder_versioned(
        &self,
        client: ClientId,
        rq: &RemainderQuery,
        client_epoch: u64,
    ) -> VersionedReply {
        let invalidate = self.update_log().changed_since(client_epoch);
        if !invalidate.is_empty() {
            return VersionedReply::Stale {
                invalidate,
                epoch: self.update_log().epoch,
            };
        }
        VersionedReply::Fresh {
            reply: self.process_remainder(client, rq),
            invalidate,
            epoch: self.update_log().epoch,
        }
    }

    /// A versioned direct query for baselines/ground truth after updates.
    pub fn direct_current(&self, spec: &pc_rtree::proto::QuerySpec) -> Vec<SpatialObject> {
        self.direct(spec)
            .results
            .iter()
            .map(|&(id, _)| *self.store().get(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use pc_geom::Point;
    use pc_rtree::naive;
    use pc_rtree::proto::{CellRef, HeapEntry, QuerySpec, Side};
    use pc_rtree::{ObjectStore, RTreeConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_server(n: usize, seed: u64) -> Server {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        Server::new(
            ObjectStore::new(objects),
            RTreeConfig::small(),
            ServerConfig::default(),
        )
    }

    #[test]
    fn updates_bump_epoch_and_record_changes() {
        let mut server = sample_server(200, 1);
        assert_eq!(server.update_log().epoch(), 0);
        let e1 = server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 777,
        }]);
        assert_eq!(e1, 1);
        assert!(!server.update_log().changed_since(0).is_empty());
        assert!(server.update_log().changed_since(1).is_empty());
    }

    #[test]
    fn queries_reflect_updates() {
        let mut server = sample_server(200, 2);
        let w = Rect::centered_square(Point::new(0.5, 0.5), 0.1);
        let before = naive::range_naive(server.store(), &w).len();
        // Drop everything currently in the window, then add one point.
        let victims: Vec<Update> = naive::range_naive(server.store(), &w)
            .into_iter()
            .map(Update::Delete)
            .collect();
        server.apply_updates(&victims);
        server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 123,
        }]);
        let outcome = server.direct(&QuerySpec::Range { window: w });
        assert_eq!(
            outcome.results.len(),
            1,
            "was {before}, all deleted, one added"
        );
        server
            .tree()
            .validate(server.tree().object_count(), false)
            .unwrap();
    }

    #[test]
    fn moves_relocate_objects() {
        let mut server = sample_server(150, 3);
        let id = ObjectId(0);
        let to = Rect::from_point(Point::new(0.99, 0.99));
        server.apply_updates(&[Update::Move { id, to }]);
        let knn = server.direct(&QuerySpec::Knn {
            center: Point::new(0.99, 0.99),
            k: 1,
        });
        assert_eq!(knn.results[0].0, id, "moved object is now the nearest");
    }

    #[test]
    fn stale_remainder_is_refused() {
        let mut server = sample_server(200, 4);
        server.apply_updates(&[Update::Delete(ObjectId(5))]);
        // A remainder whose heap references one of the nodes the delete
        // changed must be refused when the client is behind (epoch 0).
        // (A remainder through *unchanged* nodes stays resumable — the
        // companion test below — so we target a changed leaf explicitly.)
        let changed = server.update_log().changed_since(0);
        assert!(!changed.is_empty());
        let leaf = *changed
            .iter()
            .find(|n| server.tree().node(**n).is_leaf())
            .expect("delete dirties its leaf");
        let mbr = server.tree().node(leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, epoch } => {
                assert_eq!(epoch, 1);
                assert!(invalidate.contains(&leaf));
            }
            VersionedReply::Fresh { .. } => panic!("must refuse a stale resume"),
        }
        // With the current epoch it goes through.
        match server.process_remainder_versioned(0, &rq, 1) {
            VersionedReply::Fresh {
                reply, invalidate, ..
            } => {
                assert!(invalidate.is_empty());
                assert!(!reply.index.is_empty());
            }
            VersionedReply::Stale { .. } => panic!("current epoch must be fresh"),
        }
    }

    #[test]
    fn any_epoch_gap_is_refused_even_over_unchanged_nodes() {
        // Conservative protocol: the client's stage-① answer may have used
        // stale leaves the heap never mentions, so *any* gap refuses.
        let mut server = sample_server(400, 5);
        let far = server
            .direct(&QuerySpec::Knn {
                center: Point::new(0.95, 0.95),
                k: 1,
            })
            .results[0]
            .0;
        server.apply_updates(&[Update::Delete(far)]);
        let changed: std::collections::HashSet<NodeId> =
            server.update_log().changed_since(0).into_iter().collect();
        let unchanged_leaf = server
            .tree()
            .node_ids()
            .into_iter()
            .find(|n| server.tree().node(*n).is_leaf() && !changed.contains(n))
            .expect("some leaf unchanged");
        let mbr = server.tree().node(unchanged_leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(unchanged_leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, .. } => {
                assert!(!invalidate.is_empty());
            }
            VersionedReply::Fresh { .. } => {
                panic!("behind-epoch contact must be refused")
            }
        }
        match server.process_remainder_versioned(0, &rq, server.update_log().epoch()) {
            VersionedReply::Fresh { invalidate, .. } => assert!(invalidate.is_empty()),
            VersionedReply::Stale { .. } => panic!("current epoch must be fresh"),
        }
    }
}
