//! Server updates and cache invalidation — the paper's §7 future work
//! ("we plan to investigate the impact of server updates on proactive
//! caching and devise efficient cache invalidation schemes"), built as an
//! epoch-stamped invalidation protocol:
//!
//! * every update batch bumps the server **epoch** and records which index
//!   nodes changed (the R-tree reports its dirty set; BPTs are rebuilt);
//! * a client attaches its last-synced epoch to each remainder query;
//! * a behind-epoch contact is refused ([`VersionedReply::Stale`]) with the
//!   changed-node list: the client drops those items (with descendants,
//!   per the §5 constraint), re-runs stage ① against the cleaned cache and
//!   resubmits — one extra round trip per epoch gap, charged honestly by
//!   the experiments.
//!
//! Updates are **concurrent with queries**: [`Server::apply_updates`]
//! takes `&self`, building the next epoch's snapshot off to the side and
//! publishing it with one pointer swap ([`crate::ServerCore`]), so a fleet
//! keeps reading the old epoch while the object set churns. The version
//! check and the resume of one contact execute against a single pinned
//! snapshot, so an accepted resume can never straddle an epoch boundary.
//!
//! Consistency model: answers computed *at* a contact reflect the epoch
//! they were answered in exactly; purely local answers between contacts
//! may be stale (bounded by contact frequency). This is the standard
//! trade-off for invalidation-on-contact schemes without a downlink
//! broadcast channel.

use crate::server::{ClientId, Server};
use pc_geom::Rect;
use pc_rtree::proto::RemainderQuery;
/// Re-exported from the wire protocol (`pc_rtree::proto`), where the
/// [`Request::RemainderVersioned`](pc_rtree::proto::Request) envelope
/// carries it.
pub use pc_rtree::proto::VersionedReply;
use pc_rtree::{NodeId, ObjectId, SpatialObject};
use std::collections::HashMap;

/// One server-side data change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Update {
    /// A new object appears (id assigned by the store).
    Insert { mbr: Rect, size_bytes: u32 },
    /// An object disappears.
    Delete(ObjectId),
    /// An object relocates.
    Move { id: ObjectId, to: Rect },
}

/// Update/invalidation state carried by each published snapshot.
#[derive(Clone, Debug, Default)]
pub struct UpdateLog {
    epoch: u64,
    /// Node → epoch of its most recent change.
    node_changes: HashMap<NodeId, u64>,
    /// Tombstoned objects (the store keeps dense ids; the index no longer
    /// reaches them).
    deleted: Vec<ObjectId>,
}

impl UpdateLog {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes changed after `since`, sorted.
    pub fn changed_since(&self, since: u64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .node_changes
            .iter()
            .filter(|(_, &e)| e > since)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    pub fn deleted_objects(&self) -> &[ObjectId] {
        &self.deleted
    }

    pub(crate) fn record_delete(&mut self, id: ObjectId) {
        self.deleted.push(id);
    }

    pub(crate) fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    pub(crate) fn record_change(&mut self, node: NodeId, epoch: u64) {
        self.node_changes.insert(node, epoch);
    }
}

impl Server {
    /// Applies one batch of updates atomically while queries keep running:
    /// delegates to [`crate::ServerCore::apply_updates`], which publishes
    /// the next snapshot with a single pointer swap. Returns the new epoch.
    pub fn apply_updates(&self, updates: &[Update]) -> u64 {
        self.core().apply_updates(updates)
    }

    /// The version-aware stage ② of the invalidation protocol. The epoch
    /// check and (when current) the resume both run against one pinned
    /// snapshot, so the answer is exact for the epoch it reports.
    ///
    /// Conservative rule: *any* epoch gap refuses the resume. A weaker rule
    /// (refuse only when the heap references changed nodes) would keep the
    /// resume sound, but the client's stage-① portion `Rs` was computed
    /// against stale cached leaves the heap never mentions — the answer
    /// could serve deleted or moved objects at a server contact. Refusing
    /// forces the client to invalidate and re-run stage ① against cleaned
    /// state, making every contact answer current; the price is one extra
    /// round trip per (client × update-epoch) gap, which the experiments
    /// charge honestly.
    pub fn process_remainder_versioned(
        &self,
        client: ClientId,
        rq: &RemainderQuery,
        client_epoch: u64,
    ) -> VersionedReply {
        let snap = self.core().pin();
        let invalidate = snap.update_log().changed_since(client_epoch);
        if !invalidate.is_empty() {
            return VersionedReply::Stale {
                invalidate,
                epoch: snap.epoch(),
            };
        }
        VersionedReply::Fresh {
            reply: snap.resume_remainder(rq, self.remainder_mode(client)),
            invalidate,
            epoch: snap.epoch(),
        }
    }

    /// A versioned direct query for baselines/ground truth after updates;
    /// evaluated on one pinned snapshot.
    pub fn direct_current(&self, spec: &pc_rtree::proto::QuerySpec) -> Vec<SpatialObject> {
        let snap = self.core().pin();
        snap.direct(spec)
            .results
            .iter()
            .map(|&(id, _)| *snap.store().get(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use pc_geom::Point;
    use pc_rtree::naive;
    use pc_rtree::proto::{CellRef, HeapEntry, QuerySpec, Side};
    use pc_rtree::{ObjectStore, RTreeConfig};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn sample_server(n: usize, seed: u64) -> Server {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        Server::new(
            ObjectStore::new(objects),
            RTreeConfig::small(),
            ServerConfig::default(),
        )
    }

    #[test]
    fn updates_bump_epoch_and_record_changes() {
        let server = sample_server(200, 1);
        let snap = server.snapshot();
        assert_eq!(snap.update_log().epoch(), 0);
        let e1 = server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 777,
        }]);
        assert_eq!(e1, 1);
        let now = server.snapshot();
        assert!(!now.update_log().changed_since(0).is_empty());
        assert!(now.update_log().changed_since(1).is_empty());
        // The pre-update pin still sees the unchanged world.
        assert_eq!(snap.epoch(), 0);
        assert!(snap.update_log().changed_since(0).is_empty());
    }

    #[test]
    fn queries_reflect_updates() {
        let server = sample_server(200, 2);
        let w = Rect::centered_square(Point::new(0.5, 0.5), 0.1);
        let before = naive::range_naive(server.snapshot().store(), &w).len();
        // Drop everything currently in the window, then add one point.
        let victims: Vec<Update> = naive::range_naive(server.snapshot().store(), &w)
            .into_iter()
            .map(Update::Delete)
            .collect();
        server.apply_updates(&victims);
        server.apply_updates(&[Update::Insert {
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 123,
        }]);
        let outcome = server.direct(&QuerySpec::Range { window: w });
        assert_eq!(
            outcome.results.len(),
            1,
            "was {before}, all deleted, one added"
        );
        let snap = server.snapshot();
        snap.tree()
            .validate(snap.tree().object_count(), false)
            .unwrap();
    }

    #[test]
    fn moves_relocate_objects() {
        let server = sample_server(150, 3);
        let id = ObjectId(0);
        let to = Rect::from_point(Point::new(0.99, 0.99));
        server.apply_updates(&[Update::Move { id, to }]);
        let knn = server.direct(&QuerySpec::Knn {
            center: Point::new(0.99, 0.99),
            k: 1,
        });
        assert_eq!(knn.results[0].0, id, "moved object is now the nearest");
    }

    #[test]
    fn stale_remainder_is_refused() {
        let server = sample_server(200, 4);
        server.apply_updates(&[Update::Delete(ObjectId(5))]);
        // A remainder whose heap references one of the nodes the delete
        // changed must be refused when the client is behind (epoch 0).
        // (A remainder through *unchanged* nodes stays resumable — the
        // companion test below — so we target a changed leaf explicitly.)
        let snap = server.snapshot();
        let changed = snap.update_log().changed_since(0);
        assert!(!changed.is_empty());
        let leaf = *changed
            .iter()
            .find(|n| snap.tree().node(**n).is_leaf())
            .expect("delete dirties its leaf");
        let mbr = snap.tree().node(leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, epoch } => {
                assert_eq!(epoch, 1);
                assert!(invalidate.contains(&leaf));
            }
            VersionedReply::Fresh { .. } => panic!("must refuse a stale resume"),
        }
        // With the current epoch it goes through.
        match server.process_remainder_versioned(0, &rq, 1) {
            VersionedReply::Fresh {
                reply, invalidate, ..
            } => {
                assert!(invalidate.is_empty());
                assert!(!reply.index.is_empty());
            }
            VersionedReply::Stale { .. } => panic!("current epoch must be fresh"),
        }
    }

    #[test]
    fn any_epoch_gap_is_refused_even_over_unchanged_nodes() {
        // Conservative protocol: the client's stage-① answer may have used
        // stale leaves the heap never mentions, so *any* gap refuses.
        let server = sample_server(400, 5);
        let far = server
            .direct(&QuerySpec::Knn {
                center: Point::new(0.95, 0.95),
                k: 1,
            })
            .results[0]
            .0;
        server.apply_updates(&[Update::Delete(far)]);
        let snap = server.snapshot();
        let changed: HashSet<NodeId> = snap.update_log().changed_since(0).into_iter().collect();
        let unchanged_leaf = snap
            .tree()
            .node_ids()
            .into_iter()
            .find(|n| snap.tree().node(*n).is_leaf() && !changed.contains(n))
            .expect("some leaf unchanged");
        let mbr = snap.tree().node(unchanged_leaf).mbr().unwrap();
        let rq = RemainderQuery {
            spec: QuerySpec::Range { window: mbr },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(unchanged_leaf),
                    mbr,
                }),
            )],
        };
        match server.process_remainder_versioned(0, &rq, 0) {
            VersionedReply::Stale { invalidate, .. } => {
                assert!(!invalidate.is_empty());
            }
            VersionedReply::Fresh { .. } => {
                panic!("behind-epoch contact must be refused")
            }
        }
        match server.process_remainder_versioned(0, &rq, snap.epoch()) {
            VersionedReply::Fresh { invalidate, .. } => assert!(invalidate.is_empty()),
            VersionedReply::Stale { .. } => panic!("current epoch must be fresh"),
        }
    }

    #[test]
    fn updates_run_concurrently_with_queries() {
        // The point of the epoch swap: `apply_updates` takes `&self` and
        // runs while reader threads hammer the query path. No reader ever
        // observes a torn world (each pins one snapshot per query).
        let server = sample_server(300, 6);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let server = &server;
                let stop = &stop;
                scope.spawn(move || {
                    let w = Rect::centered_square(Point::new(0.2 + 0.2 * t as f64, 0.5), 0.25);
                    while !stop.load(Ordering::Acquire) {
                        let snap = server.snapshot();
                        let got = snap.direct(&QuerySpec::Range { window: w });
                        let deleted: HashSet<ObjectId> = snap
                            .update_log()
                            .deleted_objects()
                            .iter()
                            .copied()
                            .collect();
                        let want: Vec<ObjectId> = naive::range_naive(snap.store(), &w)
                            .into_iter()
                            .filter(|id| !deleted.contains(id))
                            .collect();
                        let mut ids: Vec<ObjectId> =
                            got.results.iter().map(|&(id, _)| id).collect();
                        ids.sort_unstable();
                        assert_eq!(ids, want, "pinned snapshot answered inconsistently");
                    }
                });
            }
            let mut rng = SmallRng::seed_from_u64(99);
            for _ in 0..40 {
                let update = match rng.random_range(0..3u32) {
                    0 => Update::Insert {
                        mbr: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                        size_bytes: 500,
                    },
                    1 => Update::Delete(ObjectId(rng.random_range(0..250))),
                    _ => Update::Move {
                        id: ObjectId(rng.random_range(0..250)),
                        to: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                    },
                };
                server.apply_updates(&[update]);
            }
            stop.store(true, Ordering::Release);
        });
        assert_eq!(server.snapshot().epoch(), 40);
    }

    /// The leaf of `id` in `snap`'s tree (`None` once it is deleted there).
    fn leaf_of(snap: &crate::Snapshot, id: ObjectId) -> Option<NodeId> {
        snap.tree().node_ids().into_iter().find(|&n| {
            let node = snap.tree().node(n);
            node.is_leaf()
                && node
                    .entries
                    .iter()
                    .any(|e| e.child == pc_rtree::ChildRef::Object(id))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Readers pinned during an `apply_updates` storm always observe a
        /// consistent (tree, BPT, epoch) triple, and `changed_since` never
        /// under-reports: the old-snapshot leaf of every moved or deleted
        /// object is in the changed-node set a behind-epoch client would
        /// be told to invalidate.
        #[test]
        fn snapshot_storm_keeps_readers_consistent_and_changed_since_complete(
            seed in 0u64..200,
            batches in 2usize..8,
            per_batch in 1usize..4,
        ) {
            let server = sample_server(220, seed);
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                // Two readers pinning snapshots mid-storm: the (tree, BPT,
                // epoch) triple must be coherent — a cold resume through
                // the pinned BPTs equals the pinned tree's direct answer,
                // and epochs never run backwards within one reader.
                for _ in 0..2 {
                    let server = &server;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut last_epoch = 0u64;
                        loop {
                            let done = stop.load(Ordering::Acquire);
                            let snap = server.snapshot();
                            assert!(snap.epoch() >= last_epoch, "epoch ran backwards");
                            last_epoch = snap.epoch();
                            let root = snap.tree().root();
                            let mbr = snap.tree().root_mbr().unwrap();
                            let w = Rect::centered_square(Point::new(0.5, 0.5), 0.3);
                            let rq = RemainderQuery {
                                spec: QuerySpec::Range { window: w },
                                already_found: 0,
                                heap: vec![(
                                    0.0,
                                    HeapEntry::Single(Side::Cell {
                                        cell: CellRef::node_root(root),
                                        mbr,
                                    }),
                                )],
                            };
                            let resumed =
                                snap.resume_remainder(&rq, crate::FormMode::COMPACT);
                            let mut via_bpt: Vec<ObjectId> =
                                resumed.objects.iter().map(|o| o.id).collect();
                            via_bpt.extend(resumed.confirmed.iter().copied());
                            via_bpt.sort_unstable();
                            let mut via_tree: Vec<ObjectId> = snap
                                .direct(&QuerySpec::Range { window: w })
                                .results
                                .iter()
                                .map(|&(id, _)| id)
                                .collect();
                            via_tree.sort_unstable();
                            assert_eq!(
                                via_bpt, via_tree,
                                "BPTs and tree of one pinned snapshot disagree"
                            );
                            if done {
                                break;
                            }
                        }
                    });
                }

                let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15EA5E);
                for _ in 0..batches {
                    let old = server.core().pin();
                    let n_live = old.store().len() as u32;
                    let updates: Vec<Update> = (0..per_batch)
                        .map(|_| match rng.random_range(0..3u32) {
                            0 => Update::Insert {
                                mbr: Rect::from_point(Point::new(
                                    rng.random_range(0.0..1.0),
                                    rng.random_range(0.0..1.0),
                                )),
                                size_bytes: 700,
                            },
                            1 => Update::Delete(ObjectId(rng.random_range(0..n_live))),
                            _ => Update::Move {
                                id: ObjectId(rng.random_range(0..n_live)),
                                to: Rect::from_point(Point::new(
                                    rng.random_range(0.0..1.0),
                                    rng.random_range(0.0..1.0),
                                )),
                            },
                        })
                        .collect();
                    // Old-snapshot leaves of the victims, *before* the batch.
                    let victims: Vec<NodeId> = updates
                        .iter()
                        .filter_map(|u| match *u {
                            Update::Delete(id) | Update::Move { id, .. } => {
                                leaf_of(&old, id)
                            }
                            Update::Insert { .. } => None,
                        })
                        .collect();
                    server.apply_updates(&updates);
                    let changed: HashSet<NodeId> = server
                        .snapshot()
                        .update_log()
                        .changed_since(old.epoch())
                        .into_iter()
                        .collect();
                    for leaf in victims {
                        assert!(
                            changed.contains(&leaf),
                            "changed_since under-reports: leaf {leaf:?} held a \
                             moved/deleted object but is not in the invalidation set"
                        );
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
    }
}
