//! Shared fixtures for this crate's unit tests: a seeded random server
//! and a cold-cache remainder (just the root cell, or the root pair for
//! joins) — the starting point of every stage-② scenario.

use crate::server::{FormPolicy, Server, ServerConfig};
use pc_geom::{Point, Rect};
use pc_rtree::proto::{CellRef, HeapEntry, QuerySpec, RemainderQuery, Side};
use pc_rtree::{ObjectId, ObjectStore, RTreeConfig, SpatialObject};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `n` uniformly placed point objects with random payload sizes, indexed
/// under the small tree configuration.
pub fn sample_server(n: usize, seed: u64, form: FormPolicy) -> Server {
    let mut rng = SmallRng::seed_from_u64(seed);
    let objects: Vec<SpatialObject> = (0..n)
        .map(|i| SpatialObject {
            id: ObjectId(i as u32),
            mbr: Rect::from_point(Point::new(
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            )),
            size_bytes: rng.random_range(100..2000),
        })
        .collect();
    Server::new(
        ObjectStore::new(objects),
        RTreeConfig::small(),
        ServerConfig {
            form,
            ..Default::default()
        },
    )
}

/// A cold-cache remainder: the whole query state is the root cell (or the
/// root pair for joins).
pub fn cold_remainder(server: &Server, spec: QuerySpec) -> RemainderQuery {
    let snap = server.snapshot();
    let root = snap.tree().root();
    let mbr = snap.tree().root_mbr().unwrap();
    let side = Side::Cell {
        cell: CellRef::node_root(root),
        mbr,
    };
    let entry = if spec.is_join() {
        HeapEntry::Pair(side, side)
    } else {
        HeapEntry::Single(side)
    };
    RemainderQuery {
        spec,
        already_found: 0,
        heap: vec![(spec.key_for(&mbr), entry)],
    }
}
