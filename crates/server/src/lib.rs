//! The mobile application server (right half of Fig. 3): resumes remainder
//! queries over the complete R-tree, builds the supporting index `Ir` in
//! full / compact / d⁺-level compact form (§4.2–4.3), and runs the
//! per-client adaptive controller that tunes `d` from reported false-miss
//! rates (§4.3).

mod adaptive;
mod forms;
mod server;
pub mod updates;

pub use adaptive::{AdaptiveController, AdaptiveState};
pub use forms::{build_shipments, FormMode};
pub use server::{ClientId, FormPolicy, Server, ServerConfig};
pub use updates::{Update, UpdateLog, VersionedReply};
