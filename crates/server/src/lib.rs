//! The mobile application server (right half of Fig. 3): resumes remainder
//! queries over the complete R-tree, builds the supporting index `Ir` in
//! full / compact / d⁺-level compact form (§4.2–4.3), and runs the
//! per-client adaptive controller that tunes `d` from reported false-miss
//! rates (§4.3).
//!
//! Concurrency: [`Server`] is `Send + Sync` with a `&self` read path
//! (`process_remainder` / `report_fmr` / `direct`), built from an
//! immutable [`ServerCore`] (dataset + R*-tree + BPT store, shareable
//! behind an `Arc`) plus a sharded, interior-mutable
//! [`AdaptiveController`] for the per-client §4.3 state. One server
//! instance serves a whole fleet of concurrent clients; only data updates
//! ([`Server::apply_updates`]) need `&mut`.
//!
//! Protocol boundary: all client traffic travels as typed
//! `Request`/`Response` envelopes (`pc_rtree::proto`) over a [`Transport`]
//! — [`InProcess`] (or a bare `&Server`) dispatches straight into the
//! concrete methods, while [`BatchedService`] coalesces concurrently
//! arriving remainder queries per shard before executing them against the
//! shared [`ServerCore`]. Simulation drivers hold a [`ServerHandle`]
//! (transport + shared-core metadata) instead of a concrete `&Server`.

mod adaptive;
mod core;
mod forms;
mod server;
pub mod service;
#[cfg(test)]
mod test_util;
pub mod transport;
pub mod updates;

pub use adaptive::{AdaptiveController, AdaptiveState};
pub use core::ServerCore;
pub use forms::{build_shipments, FormMode};
pub use server::{ClientId, FormPolicy, Server, ServerConfig};
pub use service::{BatchConfig, BatchedService, ServiceStats};
pub use transport::{InProcess, ServerHandle, Transport};
pub use updates::{Update, UpdateLog, VersionedReply};
