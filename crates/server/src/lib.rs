//! The mobile application server (right half of Fig. 3): resumes remainder
//! queries over the complete R-tree, builds the supporting index `Ir` in
//! full / compact / d⁺-level compact form (§4.2–4.3), and runs the
//! per-client adaptive controller that tunes `d` from reported false-miss
//! rates (§4.3).
//!
//! Concurrency: [`Server`] is `Send + Sync` with a `&self` surface for
//! *everything* — queries (`process_remainder` / `report_fmr` / `direct`)
//! *and* data updates ([`Server::apply_updates`]). The [`ServerCore`]
//! publishes the dataset + R*-tree + BPT store as epoch-stamped immutable
//! [`Snapshot`]s behind a [`SnapshotCell`]: readers
//! pin the current snapshot and never block, while an update batch builds
//! the next snapshot off to the side and swaps it in with one atomic
//! publish. A sharded, interior-mutable [`AdaptiveController`] keeps the
//! per-client §4.3 state. One server instance serves a whole fleet of
//! concurrent clients while the object set churns.
//!
//! Protocol boundary: all client traffic travels as typed
//! `Request`/`Response` envelopes (`pc_rtree::proto`) over a [`Transport`]
//! — [`InProcess`] (or a bare `&Server`) dispatches straight into the
//! concrete methods, while [`BatchedService`] coalesces concurrently
//! arriving remainder queries per shard before executing them against the
//! shared [`ServerCore`]. Simulation drivers hold a [`ServerHandle`]
//! (transport + shared-core metadata) instead of a concrete `&Server`.

mod adaptive;
pub mod cluster;
mod core;
pub mod epoch;
mod forms;
mod server;
pub mod service;
pub mod sync_util;
#[cfg(test)]
mod test_util;
pub mod transport;
pub mod updates;
pub mod wire;

pub use adaptive::{AdaptiveController, AdaptiveState};
pub use cluster::{Cluster, ClusterConfig, ClusterStats, ShardMap, SUPER_ROOT};
pub use core::{PartitionOp, ServerCore, Snapshot};
pub use epoch::SnapshotCell;
pub use forms::{build_shipments, FormMode};
pub use server::{ClientId, FormPolicy, Server, ServerConfig};
pub use service::{BatchConfig, BatchedService, ServiceStats};
pub use transport::{InProcess, ServerHandle, Transport};
pub use updates::{Update, UpdateLog, VersionedReply};
pub use wire::{TcpTransport, WireServer, WireServerConfig, WireServerStats, WireTransportStats};
