//! A batched remainder service in front of the server: concurrently
//! arriving [`Request::Remainder`] calls from a fleet are coalesced per
//! shard (bounded queue, flush threshold) and executed against the shared
//! [`ServerCore`] in one pass, amortizing dispatch — one flusher's warm
//! tree/BPT walk serves its whole batch back-to-back while later arrivals
//! queue up behind it instead of contending on the core.
//!
//! The scheme is flat combining: an uncontended caller (empty shard, no
//! flush running) executes inline as a batch of one; otherwise callers
//! enqueue, and the first to find no flush in progress drains up to
//! [`BatchConfig::max_batch`] queued requests in FIFO order, resumes them
//! all, delivers each reply to its waiter and wakes the shard. Callers
//! arriving mid-flush enqueue and wait; whoever wakes unserved becomes
//! the next flusher. With a single client every batch has size one, so
//! the service is *bit-identical* to direct dispatch — pinned by
//! `tests/fleet.rs`.
//!
//! Batching never changes an answer: remainder resumption is a pure read
//! of an immutable snapshot, and each request's inputs — its form mode
//! (the only per-client input) *and* the epoch snapshot it reads — are
//! resolved at *call* time, exactly when direct dispatch would read them,
//! and carried through the queue. A concurrent fmr report, LRU eviction
//! or `apply_updates` epoch swap between enqueue and flush cannot alter
//! the reply, and a mid-batch swap cannot split a batch across epochs:
//! every queued request executes against the snapshot it pinned when it
//! was enqueued.
//!
//! Versioned remainders (§7 invalidation protocol) batch exactly like
//! plain ones: the epoch check and the resume both evaluate against the
//! request's call-time snapshot, which is the same linearization direct
//! dispatch offers (a request racing an update may be answered by either
//! side of the swap — here, the side current when it arrived). Control
//! traffic (fmr reports, forgets, direct queries) passes straight through
//! to the in-process dispatch path — it is cheap and latency-sensitive.

use crate::core::Snapshot;
use crate::server::{ClientId, Server};
use crate::sync_util::{lock_recover, wait_recover};
use crate::transport::{dispatch, ServerHandle, Transport};
use crate::{FormMode, ServerCore};
use pc_rtree::proto::{RemainderQuery, Request, Response, VersionedReply};
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Independent queues; clients spread across them by the same
    /// multiplicative hash as the adaptive controller's shards.
    pub shards: usize,
    /// Flush threshold: a flusher drains at most this many requests per
    /// pass (its own included).
    pub max_batch: usize,
    /// Bounded-queue capacity per shard; arrivals beyond it block until
    /// the queue drains (backpressure, never rejection).
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            shards: 8,
            max_batch: 16,
            queue_cap: 64,
        }
    }
}

/// What the service has flushed so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batches executed.
    pub batches: u64,
    /// Remainder requests served through batches.
    pub batched_requests: u64,
    /// Largest batch observed.
    pub max_batch: u64,
}

impl ServiceStats {
    /// Mean requests per flush (1.0 = no coalescing happened).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// A parked request's reply slot.
enum SlotState {
    /// Not served yet.
    Empty,
    Served(Response),
    /// The flusher that drained this request died before serving it; the
    /// waiter must fail loudly rather than re-flush an empty queue forever.
    Orphaned,
}

/// One queued remainder waiting for a flusher.
struct Pending {
    rq: RemainderQuery,
    /// `Some(client_epoch)` for a versioned remainder (§7), `None` plain.
    epoch: Option<u64>,
    /// Form mode resolved at call time (direct-dispatch semantics); the
    /// flusher must not re-read adaptive state, which may have moved.
    mode: FormMode,
    /// Epoch snapshot pinned at call time: the flusher must not re-pin,
    /// or an `apply_updates` swap mid-batch would split the batch across
    /// epochs.
    snap: Arc<Snapshot>,
    slot: Arc<Mutex<SlotState>>,
}

impl Drop for Pending {
    fn drop(&mut self) {
        // A `Pending` dropped before its slot was served means its flusher
        // unwound mid-batch (the normal paths serve first, then drop).
        // Mark the slot so the waiter fails loudly; the `FlushReset` guard
        // dropping after us clears `flushing` and wakes the shard.
        let mut s = lock_recover(&self.slot);
        if matches!(*s, SlotState::Empty) {
            *s = SlotState::Orphaned;
        }
    }
}

impl Pending {
    /// Resolves this request against its pinned snapshot — the one pure
    /// computation a flusher performs per batch entry.
    fn execute(&self) -> Response {
        match self.epoch {
            None => Response::Remainder(self.snap.resume_remainder(&self.rq, self.mode)),
            Some(client_epoch) => {
                let log = self.snap.update_log();
                if !log.can_answer(client_epoch) {
                    // History below the pruned horizon: full refresh, never
                    // a silently truncated invalidation list.
                    return Response::Versioned(VersionedReply::FullRefresh {
                        epoch: self.snap.epoch(),
                    });
                }
                let invalidate = log.changed_since(client_epoch);
                Response::Versioned(if invalidate.is_empty() {
                    VersionedReply::Fresh {
                        reply: self.snap.resume_remainder(&self.rq, self.mode),
                        invalidate,
                        epoch: self.snap.epoch(),
                    }
                } else {
                    VersionedReply::Stale {
                        invalidate,
                        epoch: self.snap.epoch(),
                    }
                })
            }
        }
    }
}

#[derive(Default)]
struct ShardQueue {
    pending: VecDeque<Pending>,
    flushing: bool,
}

struct Shard {
    queue: Mutex<ShardQueue>,
    /// Signals both "a flush delivered replies" and "queue space freed".
    wake: Condvar,
}

/// Clears `flushing` and wakes the shard when dropped — on *every* exit
/// from a flush, including a panic unwinding out of `Pending::execute`.
/// Without it a dying flusher leaves `flushing` set forever and every
/// later caller parks on the condvar with no one left to wake it (the
/// PR 8 hung-fleet failure family).
struct FlushReset<'a> {
    shard: &'a Shard,
}

impl Drop for FlushReset<'_> {
    fn drop(&mut self) {
        let mut q = lock_recover(&self.shard.queue);
        q.flushing = false;
        drop(q);
        self.shard.wake.notify_all();
    }
}

/// The batched remainder front-end. Implements [`ServerHandle`], so a
/// fleet runs against it exactly as it runs against a bare `&Server`.
///
/// Generic over *how it holds the server*: `S = &Server` borrows (the
/// in-process fleet), `S = Arc<Server>` owns a share (the wire server's
/// connection threads, which need a `'static` handle). Either way the
/// batching semantics are identical.
pub struct BatchedService<S: Borrow<Server> + Send + Sync> {
    server: S,
    cfg: BatchConfig,
    shards: Vec<Shard>,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch_seen: AtomicU64,
}

impl<S: Borrow<Server> + Send + Sync> BatchedService<S> {
    pub fn new(server: S, cfg: BatchConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.max_batch > 0, "flush threshold must be positive");
        assert!(
            cfg.queue_cap >= cfg.max_batch,
            "queue must hold at least one full batch"
        );
        BatchedService {
            server,
            cfg,
            shards: (0..cfg.shards)
                .map(|_| Shard {
                    queue: Mutex::new(ShardQueue::default()),
                    wake: Condvar::new(),
                })
                .collect(),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
        }
    }

    /// With the default knobs.
    pub fn over(server: S) -> Self {
        BatchedService::new(server, BatchConfig::default())
    }

    /// The server this service fronts.
    pub fn server(&self) -> &Server {
        self.server.borrow()
    }

    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    pub fn stats(&self) -> ServiceStats {
        // ordering: Relaxed — monotone stats counters; a snapshot is a
        // report (exact-total tests read it after joins order the totals).
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServiceStats {
            batches: ld(&self.batches),
            batched_requests: ld(&self.batched_requests),
            max_batch: ld(&self.max_batch_seen),
        }
    }

    fn shard(&self, client: ClientId) -> &Shard {
        let i = (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(i % self.shards.len() as u64) as usize]
    }

    fn note_batch(&self, len: usize) {
        // ordering: Relaxed — monotone stats counters (see `stats`); the
        // max is a fetch_max, so concurrent flushers cannot lose it.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(len as u64, Ordering::Relaxed);
        // ordering: Relaxed — monotone max, same contract as above.
        self.max_batch_seen.fetch_max(len as u64, Ordering::Relaxed);
    }

    fn batched_remainder(
        &self,
        client: ClientId,
        rq: RemainderQuery,
        epoch: Option<u64>,
    ) -> Response {
        let shard = self.shard(client);
        let server = self.server.borrow();
        let snap = server.core().pin();
        if epoch.is_some() {
            // Versioned contact: record the epoch this client will sync to
            // (the reply carries the pinned snapshot's epoch), keeping the
            // fleet low-water mark — and thus log pruning — honest even
            // though the flusher never touches the adaptive table.
            server.note_client_epoch(client, snap.epoch());
        }
        let pending = Pending {
            rq,
            epoch,
            mode: server.remainder_mode(client),
            snap,
            slot: Arc::new(Mutex::new(SlotState::Empty)),
        };
        let mut q = lock_recover(&shard.queue);
        while q.pending.len() >= self.cfg.queue_cap {
            q = wait_recover(&shard.wake, q);
        }
        if q.pending.is_empty() && !q.flushing {
            // Uncontended fast path: nothing queued to coalesce with, so
            // execute inline as a batch of one, skipping the slot and
            // queue churn. Claiming the flusher role (rather than just
            // running) is what makes coalescing work at all: arrivals
            // during this execution see `flushing` and enqueue, and
            // whichever wakes unserved flushes them as one batch.
            q.flushing = true;
            drop(q);
            // Cleared + notified however `execute` exits, panic included.
            let _reset = FlushReset { shard };
            self.note_batch(1);
            return pending.execute();
        }
        let slot = Arc::clone(&pending.slot);
        q.pending.push_back(pending);
        loop {
            {
                let mut s = lock_recover(&slot);
                match std::mem::replace(&mut *s, SlotState::Empty) {
                    SlotState::Served(reply) => return reply,
                    SlotState::Orphaned => {
                        drop(s);
                        // pc-check: allow(no-unwrap, "deliberate loud propagation: the flusher that drained this request panicked before serving it, and silently retrying would re-run a request the server may have half-observed")
                        panic!("batched service: flusher died before serving this request");
                    }
                    SlotState::Empty => {}
                }
            }
            if q.flushing {
                q = wait_recover(&shard.wake, q);
                continue;
            }
            // Become the flusher and drain up to max_batch in FIFO order.
            // Our own request may or may not make this batch (more than
            // max_batch entries can sit ahead of it after a long flush);
            // either way the loop re-checks the slot and re-flushes until
            // it is served, so replies only ever travel through slots.
            q.flushing = true;
            // Declared before `batch` so that, if `execute` panics, the
            // unwind drops the remaining `Pending`s first (orphaning their
            // slots) and only then clears `flushing` and wakes the shard —
            // waiters observe a consistent picture either way.
            let reset = FlushReset { shard };
            let n = q.pending.len().min(self.cfg.max_batch);
            let batch: Vec<Pending> = q.pending.drain(..n).collect();
            drop(q);
            // Freed queue space: unblock anyone parked on the cap.
            shard.wake.notify_all();

            self.note_batch(batch.len());

            // Execute the whole batch lock-free, each request against the
            // snapshot it pinned at call time.
            for p in batch {
                let reply = p.execute();
                *lock_recover(&p.slot) = SlotState::Served(reply);
            }

            drop(reset);
            q = lock_recover(&shard.queue);
        }
    }
}

impl<S: Borrow<Server> + Send + Sync> Transport for BatchedService<S> {
    fn call(&self, client: ClientId, req: Request) -> Response {
        match req {
            Request::Remainder(rq) => self.batched_remainder(client, rq, None),
            Request::RemainderVersioned { query, epoch } => {
                self.batched_remainder(client, query, Some(epoch))
            }
            other => dispatch(self.server.borrow(), client, other),
        }
    }
}

impl<S: Borrow<Server> + Send + Sync> ServerHandle for BatchedService<S> {
    fn core(&self) -> &ServerCore {
        self.server.borrow().core()
    }

    fn apply_updates(&self, updates: &[crate::updates::Update]) -> u64 {
        self.server.borrow().apply_updates(updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FormPolicy, ServerConfig};
    use crate::test_util::{cold_remainder, sample_server};
    use pc_geom::{Point, Rect};
    use pc_rtree::proto::QuerySpec;

    #[test]
    fn service_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatchedService<&'static Server>>();
        assert_send_sync::<BatchedService<std::sync::Arc<Server>>>();
    }

    #[test]
    fn single_caller_batches_of_one_match_direct_dispatch() {
        let server = sample_server(300, 1, FormPolicy::Adaptive);
        let service = BatchedService::over(&server);
        for i in 0..8u32 {
            let w = Rect::centered_square(Point::new(0.3 + 0.05 * i as f64, 0.5), 0.25);
            let rq = cold_remainder(&server, QuerySpec::Range { window: w });
            let batched = service
                .call(i, Request::Remainder(rq.clone()))
                .into_remainder();
            let direct = server.process_remainder(i, &rq);
            assert_eq!(batched, direct);
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 8);
        assert_eq!(stats.batched_requests, 8);
        assert_eq!(stats.max_batch, 1, "no concurrency, no coalescing");
    }

    #[test]
    fn concurrent_callers_get_direct_answers_and_coalesce() {
        // All clients on one shard so coalescing has a chance to happen;
        // every reply must still equal the direct dispatch answer.
        let server = sample_server(400, 2, FormPolicy::Adaptive);
        let service = BatchedService::new(
            &server,
            BatchConfig {
                shards: 1,
                max_batch: 8,
                queue_cap: 64,
            },
        );
        let rounds = 16u32;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u32)
                .map(|client| {
                    let service = &service;
                    let server = &server;
                    scope.spawn(move || {
                        for r in 0..rounds {
                            let w = Rect::centered_square(
                                Point::new(
                                    0.1 + 0.1 * client as f64 % 0.8,
                                    0.1 + 0.05 * r as f64 % 0.8,
                                ),
                                0.2,
                            );
                            let rq = cold_remainder(server, QuerySpec::Range { window: w });
                            let got = service
                                .call(client, Request::Remainder(rq.clone()))
                                .into_remainder();
                            let want = server.process_remainder(client, &rq);
                            assert_eq!(got, want, "client {client} round {r}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let stats = service.stats();
        assert_eq!(stats.batched_requests, 8 * rounds as u64);
        assert!(stats.batches > 0);
        assert!(stats.max_batch <= 8, "flush threshold respected");
    }

    #[test]
    fn batched_remainders_survive_concurrent_epoch_swaps() {
        // Remainder queries race `apply_updates`: each queued request pins
        // the snapshot it was enqueued against, so a flush that runs after
        // a swap resumes against the coherent world its heap references —
        // never a tree the new epoch may have restructured mid-batch.
        use crate::updates::Update;
        use pc_geom::Point;

        let server = sample_server(400, 7, FormPolicy::Adaptive);
        let service = BatchedService::new(
            &server,
            BatchConfig {
                shards: 1, // all clients coalesce, maximizing mid-batch swaps
                max_batch: 8,
                queue_cap: 64,
            },
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6u32)
                .map(|client| {
                    let service = &service;
                    let server = &server;
                    scope.spawn(move || {
                        for r in 0..24 {
                            let w = Rect::centered_square(
                                Point::new(0.2 + 0.1 * client as f64 % 0.6, 0.5),
                                0.2,
                            );
                            let rq = cold_remainder(server, QuerySpec::Range { window: w });
                            let reply = service
                                .call(client, Request::Remainder(rq))
                                .into_remainder();
                            assert!(
                                !reply.index.is_empty(),
                                "client {client} round {r}: Ir must accompany Rr"
                            );
                        }
                    })
                })
                .collect();
            for i in 0..40u32 {
                server.apply_updates(&[Update::Move {
                    id: pc_rtree::ObjectId(i % 400),
                    to: pc_geom::Rect::from_point(Point::new(0.1 + 0.02 * (i % 40) as f64, 0.9)),
                }]);
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(server.core().epoch(), 40);
    }

    #[test]
    fn control_traffic_passes_through() {
        let server = sample_server(100, 3, FormPolicy::Adaptive);
        let service = BatchedService::over(&server);
        assert_eq!(
            service
                .call(5, Request::ReportFmr { fmr: 0.4 })
                .into_new_d(),
            ServerConfig::default().initial_d
        );
        assert_eq!(server.tracked_clients(), 1);
        assert!(service.call(5, Request::Forget).into_forgotten());
        assert_eq!(server.tracked_clients(), 0);
        let d = service
            .call(
                5,
                Request::Direct(QuerySpec::Knn {
                    center: Point::new(0.5, 0.5),
                    k: 3,
                }),
            )
            .into_direct();
        assert_eq!(d.results.len(), 3);
        assert_eq!(service.stats().batches, 0, "none of that was batched");
    }
}
