//! Poison-tolerant lock acquisition for serving threads.
//!
//! `std`'s lock poisoning turns *one* panicked thread into a panic
//! cascade: every later `lock().unwrap()` on the same lock panics too,
//! stranding whole connection pools and condvar wait-sets (the PR 8
//! hung-fleet failure family — one dead thread, N wedged ones). That is
//! the wrong default for this server's locks, because every critical
//! section in this crate is *panic-atomic by construction*: it only moves
//! plain data (pointer swaps, `VecDeque` push/pop, counter bumps, map
//! inserts) and performs no fallible calls mid-update, so a panic can
//! interrupt a critical section only at allocation failure — at which
//! point the process is lost anyway. Inheriting the data via
//! [`std::sync::PoisonError::into_inner`] is therefore sound, and it
//! keeps sibling serving threads alive when a peer thread dies for
//! unrelated reasons.
//!
//! Every lock acquisition in `pc_server` library code goes through these
//! helpers; the `pc-check` lint (`no-unwrap`) keeps it that way.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard from a poisoned peer panic.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-locks `l`, recovering from poison.
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks `l`, recovering from poison.
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `cv`, recovering the re-acquired guard from poison.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "lock is poisoned");
        assert_eq!(*lock_recover(&m), 7, "data recovered intact");
        *lock_recover(&m) = 9;
        assert_eq!(*lock_recover(&m), 9);
    }

    #[test]
    fn rwlock_recovery_round_trips() {
        let l = Arc::new(std::sync::RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*read_recover(&l), 1);
        *write_recover(&l) = 2;
        assert_eq!(*read_recover(&l), 2);
    }
}
