//! RCU-style snapshot publication: the primitive behind the server's
//! lock-free-for-readers update story.
//!
//! A [`SnapshotCell`] owns the *current* immutable snapshot behind an
//! `Arc`. Readers [`pin`](SnapshotCell::pin) it — a refcount bump under a
//! briefly-held read lock — and then work off their pinned `Arc` with no
//! further synchronization, for as long as they like. A writer builds the
//! *next* snapshot entirely off to the side and [`publish`](SnapshotCell::publish)es
//! it with a single pointer-sized swap under the write lock; readers that
//! pinned the old snapshot keep it alive (and keep reading a consistent
//! world) until their pins drop, at which point the old snapshot frees
//! itself through the normal `Arc` refcount.
//!
//! This is a registry-free stand-in for `arc_swap::ArcSwap`: without a
//! deferred-reclamation scheme (hazard pointers, epoch GC) a raw atomic
//! pointer swap cannot safely drop the old value while readers may still
//! hold it, so the pin takes a nanosecond-scale shared lock instead of a
//! bare atomic load. The properties that matter upstream are preserved:
//! readers never block while *using* a snapshot, a swap never blocks on
//! readers, and no reader can ever observe a half-updated world.

use crate::sync_util::{read_recover, write_recover};
use std::sync::{Arc, RwLock};

/// A published immutable snapshot, swappable in one atomic step.
pub struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    pub fn new(value: T) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(value)),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and
    /// internally consistent) across any number of concurrent publishes.
    pub fn pin(&self) -> Arc<T> {
        read_recover(&self.current).clone()
    }

    /// Publishes `next` as the new current snapshot. Readers pinned to the
    /// old snapshot are unaffected; new pins see `next`. Callers that
    /// derive `next` from the current snapshot must serialize themselves
    /// (see `ServerCore::apply_updates`) — the cell itself only guarantees
    /// the swap is atomic.
    pub fn publish(&self, next: T) {
        let next = Arc::new(next);
        let old = {
            let mut guard = write_recover(&self.current);
            std::mem::replace(&mut *guard, next)
        };
        // When no reader still pins it, the old snapshot deallocates here
        // — outside the lock, so a teardown never stalls pins. (With
        // structurally-shared snapshots the teardown is cheap anyway:
        // everything the next epoch still references survives behind its
        // inner `Arc`s, so only the retired epoch's private copies free.)
        drop(old);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SnapshotCell").field(&*self.pin()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn pin_survives_publish() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.pin();
        cell.publish(vec![9]);
        assert_eq!(*old, vec![1, 2, 3], "pinned snapshot is immutable");
        assert_eq!(*cell.pin(), vec![9], "new pins see the published value");
        drop(old); // old snapshot frees here, not at publish time
    }

    #[test]
    fn concurrent_pins_always_see_whole_values() {
        // Publish (a, a) pairs while readers assert both halves match — a
        // torn or half-published snapshot would break the invariant.
        let cell = SnapshotCell::new((0u64, 0u64));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    // ordering: Acquire pairs with the Release store after
                    // the last publish, so a reader that sees `stop` also
                    // sees publish 499 — pinning the final-value assert.
                    while !stop.load(Ordering::Acquire) {
                        let snap = cell.pin();
                        assert_eq!(snap.0, snap.1, "snapshot observed mid-update");
                    }
                });
            }
            for i in 1..500u64 {
                cell.publish((i, i));
            }
            // ordering: Release publishes "all 499 publishes happened"
            // to the Acquire loads in the reader loops above.
            stop.store(true, Ordering::Release);
        });
        assert_eq!(*cell.pin(), (499, 499));
    }
}
