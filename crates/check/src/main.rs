//! CLI for the workspace concurrency lint: `cargo run -p pc-check -- lint`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pc-check lint [--root DIR] [--json FILE] [-q]\n\
         \n\
         Runs the workspace concurrency lint (panic paths, atomic ordering\n\
         invariants, lock discipline across socket writes, wire-constant\n\
         drift) and exits nonzero on any violation. --json writes the full\n\
         report (findings + reasoned suppressions) for the CI artifact."
    );
    ExitCode::from(2)
}

/// Walks upward until a directory holding a `[workspace]` manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "-q" | "--quiet" => {
                quiet = true;
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("pc-check: no workspace root found (run from the repo or pass --root)");
        return ExitCode::from(2);
    };

    let report = match pc_check::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pc-check: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("pc-check: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let counts = report.counts();
        let summary: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        println!(
            "pc-check: {} files scanned, {} violation(s){}{}, {} reasoned allow(s)",
            report.files_scanned,
            report.findings.len(),
            if summary.is_empty() { "" } else { " — " },
            summary.join(", "),
            report.allowed.len()
        );
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
