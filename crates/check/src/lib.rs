//! `pc_check`: the workspace's concurrency lint.
//!
//! A deliberately small, dependency-free static pass — a line-aware
//! scanner (comments and string literals are stripped by a char-level
//! state machine, `#[cfg(test)]` regions are tracked by brace depth), not
//! a real parser. That buys exactly the class of checks this workspace
//! needs without an AST:
//!
//! * [`RULE_UNWRAP`] — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test library code
//!   of `pc_server`, `pc_wire` and `pc_sim`. A panic on a serving thread
//!   strands every waiter parked on the same condvar or lock (the PR 8
//!   hung-fleet failure family), so every panic path must either be
//!   rewritten or carry a reasoned [suppression](#suppressions).
//! * [`RULE_ORDERING`] — every atomic `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` use must be preceded (within
//!   [`ORDERING_COMMENT_WINDOW`] lines, or trailed on the same line) by an
//!   `ordering:` comment naming the invariant the chosen ordering
//!   provides — what it synchronizes, or why no synchronization is needed.
//! * [`RULE_GUARD`] — in `pc_server::wire`, no lock guard may be held
//!   across a blocking socket write (`write_all`) unless the write goes
//!   *through* that guard (the per-connection write mutex). A guard held
//!   across a blocking write turns one slow peer into a server-wide stall.
//! * [`RULE_DRIFT`] — the byte constants in `pc_rtree::proto` (the
//!   paper's cost model) and the packed record sizes in `pc_wire`'s codec
//!   must agree, so the `encoded == wire_bytes() + itemized overhead`
//!   identity pinned by the codec proptests cannot silently rot when
//!   either side's constants move.
//!
//! # Suppressions
//!
//! A finding is suppressed by a comment on the same line, or on one of
//! the two preceding lines:
//!
//! ```text
//! // pc-check: allow(no-unwrap, "constructor precondition, not runtime input")
//! ```
//!
//! The reason is mandatory — an allow without one is itself a violation —
//! and so is usefulness: a suppression that matches no finding is flagged
//! as stale. The report ([`LintReport`]) carries every violation *and*
//! every accepted suppression with its reason, and serializes to JSON for
//! the CI artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub const RULE_UNWRAP: &str = "no-unwrap";
pub const RULE_ORDERING: &str = "ordering-invariant";
pub const RULE_GUARD: &str = "no-guard-across-write";
pub const RULE_DRIFT: &str = "wire-const-drift";
pub const RULE_SUPPRESSION: &str = "suppression";

/// How many lines above an `Ordering::*` use the `ordering:` invariant
/// comment may sit (multi-line method chains put the comment above the
/// statement, not the token).
pub const ORDERING_COMMENT_WINDOW: usize = 4;

/// Crates whose library code must be panic-free (rule `no-unwrap`).
const PANIC_FREE_CRATES: &[&str] = &["server", "wire", "sim"];

/// File-name stems that are test code in their entirety (gated by a
/// `#[cfg(test)] mod …;` in their parent, so the region tracker cannot
/// see the attribute from inside the file).
const TEST_FILE_STEMS: &[&str] = &["tests", "proptests", "test_util"];

// ---------------------------------------------------------------------
// Findings and the report
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

#[derive(Clone, Debug)]
pub struct Allowed {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    /// Unsuppressed violations: each one fails the lint.
    pub findings: Vec<Finding>,
    /// Findings covered by a reasoned suppression (reported, not fatal).
    pub allowed: Vec<Allowed>,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per rule, for the summary table.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"violations\": {},", self.findings.len());
        let _ = writeln!(s, "  \"allowed\": {},", self.allowed.len());
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"suppressions\": [\n");
        for (i, a) in self.allowed.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                a.rule,
                json_escape(&a.file),
                a.line,
                json_escape(&a.reason)
            );
            s.push_str(if i + 1 < self.allowed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Source model: one scanned file
// ---------------------------------------------------------------------

/// One source line after lexical stripping.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so token searches cannot match inside
    /// literals or docs.
    pub code: String,
    /// Concatenated comment text on the line (line + block comments).
    pub comment: String,
    /// Inside a `#[cfg(test)]`-gated region (or a test-only file).
    pub in_test: bool,
}

/// A parsed `// pc-check: allow(rule, reason)` marker.
#[derive(Clone, Debug)]
struct Suppression {
    rule: String,
    reason: String,
    line: usize,
    /// Trailing comment on a code line (covers that line only) vs a
    /// standalone comment line (covers the next two lines).
    trailing: bool,
    used: bool,
}

pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    pub lines: Vec<Line>,
    suppressions: Vec<Suppression>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let lines = strip_lines(text);
        let lines = mark_test_regions(rel_path, lines);
        let mut suppressions = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some((rule, reason)) = parse_allow(&line.comment) {
                suppressions.push(Suppression {
                    rule,
                    reason,
                    line: i + 1,
                    trailing: !line.code.trim().is_empty(),
                    used: false,
                });
            }
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            suppressions,
        }
    }

    /// Looks for a suppression of `rule` covering `line` (1-based): a
    /// trailing allow covers exactly its own line; a standalone comment
    /// allow covers the two lines below it.
    fn suppression_for(&mut self, rule: &str, line: usize) -> Option<&mut Suppression> {
        self.suppressions.iter_mut().find(|s| {
            s.rule == rule
                && if s.trailing {
                    s.line == line
                } else {
                    s.line < line && line - s.line <= 2
                }
        })
    }
}

/// Extracts `pc-check: allow(rule, reason...)` from comment text. The
/// marker must *lead* the comment — prose (or docs like this paragraph)
/// that merely mentions the syntax never arms a suppression.
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let trimmed = comment.trim();
    if !trimmed.starts_with("pc-check: allow(") {
        return None;
    }
    let body = &trimmed["pc-check: allow(".len()..];
    let close = body.rfind(')')?;
    let body = &body[..close];
    let (rule, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (body.trim(), ""),
    };
    let reason = reason.trim_matches('"').trim();
    Some((rule.to_string(), reason.to_string()))
}

// ---------------------------------------------------------------------
// Lexical stripping: comments out, literal contents blanked
// ---------------------------------------------------------------------

fn strip_lines(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),    // nested block comment depth
        Str,           // "..."
        RawStr(usize), // r##"..."## with N hashes
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut n = 0;
                        while n < hashes && bytes.get(i + 1 + n) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            state = State::Code;
                            i += 1 + hashes;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
                State::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw[byte_offset(raw, i) + 2..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if c == 'r'
                        && matches!(next, Some('"') | Some('#'))
                        && !prev_is_ident(&code)
                    {
                        // r"..." or r#"..."#
                        let mut hashes = 0;
                        while bytes.get(i + 1 + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if bytes.get(i + 1 + hashes) == Some(&'"') {
                            code.push('r');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            code.push('"');
                            state = State::RawStr(hashes);
                            i += 2 + hashes;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: 'x' / '\n' are
                        // literals; 'a in `&'a` is a lifetime.
                        if next == Some('\\') {
                            // Escape: blank until the closing quote.
                            code.push('\'');
                            i += 1;
                            while i < bytes.len() && bytes[i] != '\'' {
                                code.push(' ');
                                i += if bytes[i] == '\\' { 2 } else { 1 };
                            }
                            if i < bytes.len() {
                                code.push('\'');
                                i += 1;
                            }
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            code.push(c); // lifetime
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    out
}

/// Maps a char index back to a byte offset (lines may hold non-ASCII).
fn byte_offset(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false)
}

/// Marks lines inside `#[cfg(test)] <item> { … }` regions (brace-depth
/// tracked) and whole-file test modules (by stem / directory convention).
fn mark_test_regions(rel_path: &str, mut lines: Vec<Line>) -> Vec<Line> {
    let path = Path::new(rel_path);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    let whole_file_test = TEST_FILE_STEMS.contains(&stem)
        || rel_path.starts_with("tests/")
        || rel_path.contains("/tests/");
    if whole_file_test {
        for l in &mut lines {
            l.in_test = true;
        }
        return lines;
    }

    let mut depth: i32 = 0;
    // (region entry depth) for each open #[cfg(test)] item body.
    let mut test_regions: Vec<i32> = Vec::new();
    // Saw #[cfg(test)] and waiting for the item's opening brace.
    let mut pending_cfg = false;
    for line in &mut lines {
        let code = line.code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_cfg = true;
        }
        if !test_regions.is_empty() || pending_cfg {
            line.in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_cfg {
                        test_regions.push(depth);
                        pending_cfg = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&entry) = test_regions.last() {
                        if depth == entry {
                            test_regions.pop();
                        }
                    }
                }
                // `#[cfg(test)] mod foo;` — out-of-line module, no body
                // here; the file itself is caught by the stem rule.
                ';' if pending_cfg && test_regions.is_empty() => {
                    pending_cfg = false;
                }
                _ => {}
            }
        }
    }
    lines
}

// ---------------------------------------------------------------------
// Rule: no-unwrap
// ---------------------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn check_no_unwrap(file: &mut SourceFile, report: &mut LintReport) {
    for i in 0..file.lines.len() {
        let line = &file.lines[i];
        if line.in_test {
            continue;
        }
        let code = line.code.clone();
        for tok in PANIC_TOKENS {
            if !code.contains(tok) {
                continue;
            }
            // `debug_assert!`-style macros are fine; `.expect(` never
            // matches `expect_count(` etc. because of the leading dot.
            let message = format!(
                "`{}` in non-test library code: a panic here can strand \
                 waiters on this thread's locks/condvars; return a typed \
                 error or add a reasoned allow",
                tok.trim_end_matches('(')
            );
            emit(file, report, RULE_UNWRAP, i + 1, message);
            break; // one finding per line
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ordering-invariant
// ---------------------------------------------------------------------

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn check_ordering(file: &mut SourceFile, report: &mut LintReport) {
    for i in 0..file.lines.len() {
        let code = &file.lines[i].code;
        let Some(which) = ATOMIC_ORDERINGS.iter().find(|o| code.contains(*o)) else {
            continue;
        };
        let lo = i.saturating_sub(ORDERING_COMMENT_WINDOW);
        let documented = (lo..=i).any(|j| {
            file.lines[j]
                .comment
                .to_ascii_lowercase()
                .contains("ordering:")
        });
        if !documented {
            let message = format!(
                "`{which}` without an `ordering:` invariant comment within \
                 {ORDERING_COMMENT_WINDOW} lines naming what it synchronizes"
            );
            emit(file, report, RULE_ORDERING, i + 1, message);
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-guard-across-write
// ---------------------------------------------------------------------

#[derive(Debug)]
struct LiveGuard {
    name: String,
    source: String,
    decl_depth: i32,
    decl_line: usize,
}

/// Files the socket-write lock-discipline rule applies to.
fn guard_rule_applies(rel_path: &str) -> bool {
    rel_path == "crates/server/src/wire.rs"
}

fn check_guard_across_write(file: &mut SourceFile, report: &mut LintReport) {
    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    for i in 0..file.lines.len() {
        let code = file.lines[i].code.clone();
        let line_start_depth = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        // Scope exits kill guards declared deeper.
        guards.retain(|g| depth >= g.decl_depth && line_start_depth >= g.decl_depth);
        // Explicit drops.
        for g_idx in (0..guards.len()).rev() {
            if code.contains(&format!("drop({})", guards[g_idx].name)) {
                guards.remove(g_idx);
            }
        }
        // Blocking socket writes: flag if any live guard is not the one
        // being written through.
        if let Some(pos) = code.find("write_all(") {
            let recv = receiver_before(&code, pos);
            let offenders: Vec<String> = guards
                .iter()
                .filter(|g| recv != g.name && !recv.starts_with(&format!("{}.", g.name)))
                .map(|g| format!("`{}` (line {}, {})", g.name, g.decl_line, g.source))
                .collect();
            if !offenders.is_empty() {
                let message = format!(
                    "blocking socket write with lock guard(s) held: {} — a \
                     slow peer would stall every thread contending on them",
                    offenders.join(", ")
                );
                emit(file, report, RULE_GUARD, i + 1, message);
            }
        }
        // New guard bindings: `let [mut] NAME = EXPR.lock()…` (also
        // `.read()` / `.write()` — empty parens, so `stream.write(buf)`
        // never matches) and the poison-tolerant `sync_util` helpers
        // (`lock_recover(&x)` etc.), which return guards too.
        if let Some(g) = parse_guard_binding(&code, line_start_depth, i + 1) {
            guards.push(g);
        }
    }
}

fn receiver_before(code: &str, call_pos: usize) -> String {
    // `write_all(` may be reached via `x.write_all(`; walk the receiver
    // chain backwards over ident chars and dots.
    let head = &code[..call_pos];
    let mut chars: Vec<char> = head.chars().collect();
    if chars.last() == Some(&'.') {
        chars.pop();
    }
    let mut recv: Vec<char> = Vec::new();
    while let Some(&c) = chars.last() {
        if c.is_alphanumeric() || c == '_' || c == '.' {
            recv.push(c);
            chars.pop();
        } else {
            break;
        }
    }
    recv.reverse();
    let recv: String = recv.into_iter().collect();
    recv.split('.').next().unwrap_or("").to_string()
}

fn parse_guard_binding(code: &str, depth: i32, line_no: usize) -> Option<LiveGuard> {
    let let_pos = code.find("let ")?;
    let rest = &code[let_pos + 4..];
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let (name, after) = rest.split_once('=')?;
    let name = name.trim().trim_end_matches(':').trim();
    if !name.chars().all(|c| c.is_alphanumeric() || c == '_') || name.is_empty() {
        return None;
    }
    let after = after.trim();
    let lockish = [".lock()", ".read()", ".write()"];
    let recoverish = ["lock_recover(", "read_recover(", "write_recover("];
    let source = if let Some(hit) = lockish.iter().find(|t| after.contains(*t)) {
        after
            .find(*hit)
            .map(|p| after[..p].trim().to_string())
            .unwrap_or_default()
    } else if let Some(hit) = recoverish.iter().find(|t| after.contains(*t)) {
        // The guarded lock is the helper's argument: `lock_recover(&x)`.
        let start = after.find(*hit)? + hit.len();
        let arg = after[start..].split(')').next().unwrap_or("");
        arg.trim().trim_start_matches('&').trim().to_string()
    } else {
        return None;
    };
    Some(LiveGuard {
        name: name.to_string(),
        source,
        decl_depth: depth,
        decl_line: line_no,
    })
}

// ---------------------------------------------------------------------
// Rule: wire-const-drift
// ---------------------------------------------------------------------

/// The cross-crate byte-constant identities the codec's size proptests
/// assume. Each is (label, lhs expr, rhs expr, relation) evaluated over
/// the merged constant tables of `pc_rtree::proto` and `pc_wire`.
const DRIFT_IDENTITIES: &[(&str, &str, &str, &str)] = &[
    // The frame doc ("16-byte versioned frame header") and every
    // overhead itemization assume this exact size.
    ("frame-header", "FRAME_HEADER_BYTES", "16", "=="),
    // Shipment cell records pack to the modeled R-tree entry record.
    ("cell-pack", "SIDE_BYTES", "ENTRY_BYTES", "=="),
    // Heap object sides pack to the modeled object header record.
    ("obj-pack", "SIDE_BYTES", "OBJECT_HEADER_BYTES", "=="),
    // A heap entry = confirmation word + one packed side…
    (
        "heap-entry",
        "HEAP_ENTRY_BYTES",
        "CONFIRM_BYTES + SIDE_BYTES",
        "==",
    ),
    // …and a join-pair entry carries a second side.
    (
        "heap-pair",
        "HEAP_PAIR_BYTES",
        "CONFIRM_BYTES + 2 * SIDE_BYTES",
        "==",
    ),
    // The encoded query spec must fit the model's descriptor budget.
    ("spec-budget", "SPEC_BYTES", "QUERY_DESC_BYTES", "<="),
    // Fresh versioned replies itemize exactly variant byte + count word
    // + the reply section header.
    (
        "fresh-overhead",
        "VERSIONED_FRESH_OVERHEAD_BYTES",
        "1 + 4 + RESPONSE_REPLY_HEADER_BYTES",
        "==",
    ),
];

/// Files whose constants feed the drift identities, workspace-relative.
pub const DRIFT_SOURCE_FILES: &[&str] = &[
    "crates/rtree/src/proto.rs",
    "crates/wire/src/codec.rs",
    "crates/wire/src/frame.rs",
    "crates/wire/src/lib.rs",
];

fn check_wire_drift(root: &Path, report: &mut LintReport) {
    let mut consts: BTreeMap<String, i128> = BTreeMap::new();
    let mut tag_consts: Vec<(String, i128)> = Vec::new();
    for rel in DRIFT_SOURCE_FILES {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            report.findings.push(Finding {
                rule: RULE_DRIFT,
                file: (*rel).to_string(),
                line: 0,
                message: "drift-check source file missing (moved or renamed?)".into(),
            });
            continue;
        };
        collect_consts(&text, &mut consts);
    }
    for (name, value) in &consts {
        if name.starts_with("REQ_") || name.starts_with("RESP_") {
            tag_consts.push((name.clone(), *value));
        }
    }

    let anchor = |report: &mut LintReport, msg: String| {
        report.findings.push(Finding {
            rule: RULE_DRIFT,
            file: DRIFT_SOURCE_FILES[0].to_string(),
            line: 0,
            message: msg,
        });
    };

    for (label, lhs, rhs, rel) in DRIFT_IDENTITIES {
        let l = eval_expr(lhs, &consts);
        let r = eval_expr(rhs, &consts);
        match (l, r) {
            (Some(l), Some(r)) => {
                let holds = match *rel {
                    "==" => l == r,
                    "<=" => l <= r,
                    other => unreachable!("unknown relation {other}"),
                };
                if !holds {
                    anchor(
                        report,
                        format!(
                            "wire constant drift [{label}]: `{lhs}` = {l} is not {rel} `{rhs}` = {r}"
                        ),
                    );
                }
            }
            _ => anchor(
                report,
                format!(
                    "wire constant drift [{label}]: cannot resolve `{lhs}` {rel} `{rhs}` \
                     (constant renamed or moved out of the scanned files?)"
                ),
            ),
        }
    }

    // Frame tags: requests and responses live in disjoint nibble-ish
    // ranges (`tag::is_request` relies on it) and never collide.
    for (name, v) in &tag_consts {
        let ok = if name.starts_with("REQ_") {
            (1..16).contains(v)
        } else {
            (16..32).contains(v)
        };
        if !ok {
            anchor(
                report,
                format!("wire constant drift [tag-range]: `{name}` = {v} escapes its tag range"),
            );
        }
    }
    for a in 0..tag_consts.len() {
        for b in a + 1..tag_consts.len() {
            if tag_consts[a].1 == tag_consts[b].1 {
                anchor(
                    report,
                    format!(
                        "wire constant drift [tag-collision]: `{}` and `{}` share value {}",
                        tag_consts[a].0, tag_consts[b].0, tag_consts[a].1
                    ),
                );
            }
        }
    }
}

/// Pulls `const NAME: <int type> = EXPR;` declarations out of stripped
/// source text. Expressions resolve lazily via [`eval_expr`].
fn collect_consts(text: &str, out: &mut BTreeMap<String, i128>) {
    let lines = strip_lines(text);
    let mut raw: Vec<(String, String)> = Vec::new();
    for line in &lines {
        let code = line.code.trim();
        let Some(rest) = code
            .strip_prefix("pub const ")
            .or_else(|| code.strip_prefix("const "))
        else {
            continue;
        };
        let Some((name_ty, expr)) = rest.split_once('=') else {
            continue;
        };
        let Some((name, ty)) = name_ty.split_once(':') else {
            continue;
        };
        let ty = ty.trim();
        if !matches!(ty, "u8" | "u16" | "u32" | "u64" | "usize" | "i64") {
            continue;
        }
        let expr = expr.trim().trim_end_matches(';').trim();
        raw.push((name.trim().to_string(), expr.to_string()));
    }
    // Two resolution passes let forward references settle (const order in
    // a file is arbitrary).
    for _ in 0..2 {
        for (name, expr) in &raw {
            if !out.contains_key(name) {
                if let Some(v) = eval_expr(expr, out) {
                    out.insert(name.clone(), v);
                }
            }
        }
    }
}

/// Evaluates an integer const expression: literals (incl. `0x`, `_`),
/// identifiers from `env`, `+ - * << >> |` and parens.
pub fn eval_expr(expr: &str, env: &BTreeMap<String, i128>) -> Option<i128> {
    let tokens = tokenize(expr)?;
    let mut pos = 0;
    let v = parse_or(&tokens, &mut pos, env)?;
    if pos == tokens.len() {
        Some(v)
    } else {
        None
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(i128),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn tokenize(s: &str) -> Option<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Op("+"));
                i += 1;
            }
            '-' => {
                toks.push(Tok::Op("-"));
                i += 1;
            }
            '*' => {
                toks.push(Tok::Op("*"));
                i += 1;
            }
            '|' => {
                toks.push(Tok::Op("|"));
                i += 1;
            }
            '<' if chars.get(i + 1) == Some(&'<') => {
                toks.push(Tok::Op("<<"));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'>') => {
                toks.push(Tok::Op(">>"));
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                let hex = c == '0' && chars.get(i + 1) == Some(&'x');
                if hex {
                    i += 2;
                }
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let lit: String = chars[start..i].iter().filter(|&&c| c != '_').collect();
                // Strip explicit type suffixes like `16u64` (hex digits
                // must survive, so only the known suffixes come off).
                let mut lit = lit;
                for suffix in [
                    "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
                ] {
                    if let Some(body) = lit.strip_suffix(suffix) {
                        if !body.is_empty() {
                            lit = body.to_string();
                        }
                        break;
                    }
                }
                let v = if let Some(h) = lit.strip_prefix("0x") {
                    i128::from_str_radix(h, 16).ok()?
                } else {
                    lit.parse().ok()?
                };
                toks.push(Tok::Num(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // `EPOCH_BYTES as u64` style casts: skip the keyword and
                // the following type token.
                if ident == "as" {
                    while i < chars.len() && chars[i] == ' ' {
                        i += 1;
                    }
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    toks.push(Tok::Ident(ident));
                }
            }
            _ => return None,
        }
    }
    Some(toks)
}

fn parse_or(toks: &[Tok], pos: &mut usize, env: &BTreeMap<String, i128>) -> Option<i128> {
    let mut v = parse_shift(toks, pos, env)?;
    while toks.get(*pos) == Some(&Tok::Op("|")) {
        *pos += 1;
        v |= parse_shift(toks, pos, env)?;
    }
    Some(v)
}

fn parse_shift(toks: &[Tok], pos: &mut usize, env: &BTreeMap<String, i128>) -> Option<i128> {
    let mut v = parse_add(toks, pos, env)?;
    loop {
        match toks.get(*pos) {
            Some(Tok::Op("<<")) => {
                *pos += 1;
                v <<= parse_add(toks, pos, env)?;
            }
            Some(Tok::Op(">>")) => {
                *pos += 1;
                v >>= parse_add(toks, pos, env)?;
            }
            _ => return Some(v),
        }
    }
}

fn parse_add(toks: &[Tok], pos: &mut usize, env: &BTreeMap<String, i128>) -> Option<i128> {
    let mut v = parse_mul(toks, pos, env)?;
    loop {
        match toks.get(*pos) {
            Some(Tok::Op("+")) => {
                *pos += 1;
                v += parse_mul(toks, pos, env)?;
            }
            Some(Tok::Op("-")) => {
                *pos += 1;
                v -= parse_mul(toks, pos, env)?;
            }
            _ => return Some(v),
        }
    }
}

fn parse_mul(toks: &[Tok], pos: &mut usize, env: &BTreeMap<String, i128>) -> Option<i128> {
    let mut v = parse_atom(toks, pos, env)?;
    while toks.get(*pos) == Some(&Tok::Op("*")) {
        *pos += 1;
        v *= parse_atom(toks, pos, env)?;
    }
    Some(v)
}

fn parse_atom(toks: &[Tok], pos: &mut usize, env: &BTreeMap<String, i128>) -> Option<i128> {
    match toks.get(*pos)? {
        Tok::Num(v) => {
            *pos += 1;
            Some(*v)
        }
        Tok::Ident(name) => {
            *pos += 1;
            env.get(name).copied()
        }
        Tok::LParen => {
            *pos += 1;
            let v = parse_or(toks, pos, env)?;
            if toks.get(*pos) == Some(&Tok::RParen) {
                *pos += 1;
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn emit(
    file: &mut SourceFile,
    report: &mut LintReport,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let rel = file.rel_path.clone();
    if let Some(s) = file.suppression_for(rule, line) {
        s.used = true;
        if s.reason.is_empty() {
            report.findings.push(Finding {
                rule: RULE_SUPPRESSION,
                file: rel,
                line: s.line,
                message: format!("allow({rule}) without a reason — suppressions must say why"),
            });
        } else {
            let reason = s.reason.clone();
            report.allowed.push(Allowed {
                rule,
                file: rel,
                line,
                reason,
            });
        }
        return;
    }
    report.findings.push(Finding {
        rule,
        file: rel,
        line,
        message,
    });
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run_lint(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();

    // Scanned set: every crate's src tree plus the workspace integration
    // tests. Vendored stand-ins are exempt (not ours to lint).
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no crates/ under {} — wrong --root?", root.display()),
        ));
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        rust_files_under(&crate_dir.join("src"), &mut files);
        rust_files_under(&crate_dir.join("tests"), &mut files);
    }
    rust_files_under(&root.join("tests"), &mut files);

    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        let mut file = SourceFile::parse(&rel, &text);
        report.files_scanned += 1;

        let panic_free = PANIC_FREE_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
        if panic_free {
            check_no_unwrap(&mut file, &mut report);
        }
        check_ordering(&mut file, &mut report);
        if guard_rule_applies(&rel) {
            check_guard_across_write(&mut file, &mut report);
        }

        // Stale suppressions: an allow that matched nothing is noise at
        // best and a silently-disarmed check at worst.
        for s in &file.suppressions {
            if !s.used {
                report.findings.push(Finding {
                    rule: RULE_SUPPRESSION,
                    file: rel.clone(),
                    line: s.line,
                    message: format!(
                        "stale suppression: allow({}) matched no finding on lines {}..={}",
                        s.rule,
                        s.line,
                        s.line + 2
                    ),
                });
            }
        }
    }

    check_wire_drift(root, &mut report);
    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(report)
}

#[cfg(test)]
mod tests;
