//! Scanner-level unit tests: the lexical stripper, test-region tracking,
//! suppression parsing and each rule on embedded fixtures.

use super::*;

fn parse(src: &str) -> SourceFile {
    SourceFile::parse("crates/server/src/fixture.rs", src)
}

fn findings_of(file: &mut SourceFile, rule: &str) -> Vec<usize> {
    let mut report = LintReport::default();
    match rule {
        RULE_UNWRAP => check_no_unwrap_public(file, &mut report),
        RULE_ORDERING => check_ordering_public(file, &mut report),
        RULE_GUARD => check_guard_public(file, &mut report),
        _ => panic!("unsupported rule in fixture helper"),
    }
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// Thin pub(crate) shims so the fixtures drive the real rule bodies.
fn check_no_unwrap_public(file: &mut SourceFile, report: &mut LintReport) {
    super::check_no_unwrap(file, report)
}
fn check_ordering_public(file: &mut SourceFile, report: &mut LintReport) {
    super::check_ordering(file, report)
}
fn check_guard_public(file: &mut SourceFile, report: &mut LintReport) {
    super::check_guard_across_write(file, report)
}

#[test]
fn strings_and_comments_are_blanked() {
    let f = parse(
        r#"
let a = "contains .unwrap() and panic!(";
// a comment mentioning .unwrap()
let b = 'x';
"#,
    );
    for line in &f.lines {
        assert!(
            !line.code.contains(".unwrap()"),
            "literal leaked: {:?}",
            line.code
        );
    }
    assert!(f.lines[2].comment.contains(".unwrap()"));
}

#[test]
fn block_comments_nest_and_span_lines() {
    let f =
        parse("/* outer /* inner */ still comment */ let x = 1;\n/* spans\nlines */ let y = 2;");
    assert!(f.lines[0].code.contains("let x = 1;"));
    assert!(!f.lines[0].code.contains("comment"));
    assert!(!f.lines[1].code.contains("spans"));
    assert!(f.lines[2].code.contains("let y = 2;"));
}

#[test]
fn char_literals_do_not_eat_lifetimes() {
    let f = parse("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '}';\nlet n = '\\n';");
    assert!(f.lines[0].code.contains("fn f<'a>"));
    // The brace inside the char literal must not skew depth tracking.
    assert!(!f.lines[1].code.contains('}') || f.lines[1].code.matches('}').count() == 0);
}

#[test]
fn cfg_test_regions_are_tracked_by_depth() {
    let src = r#"
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn test_code() { y.unwrap(); }
}
fn more_lib() { z.unwrap(); }
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_UNWRAP), vec![2, 7]);
}

#[test]
fn whole_test_files_are_exempt_from_no_unwrap() {
    let mut f = SourceFile::parse(
        "crates/server/src/test_util.rs",
        "fn helper() { x.unwrap(); }",
    );
    assert_eq!(findings_of(&mut f, RULE_UNWRAP), Vec::<usize>::new());
    let mut f = SourceFile::parse(
        "crates/sim/src/collab/tests.rs",
        "fn helper() { x.unwrap(); }",
    );
    assert_eq!(findings_of(&mut f, RULE_UNWRAP), Vec::<usize>::new());
}

#[test]
fn expect_matches_only_the_method_call() {
    let mut f = parse("let n = rd.expect_count(n, 16, \"x\");\nlet v = opt.expect(\"boom\");");
    assert_eq!(findings_of(&mut f, RULE_UNWRAP), vec![2]);
}

#[test]
fn suppressions_cover_same_line_and_two_above() {
    let src = r#"
// pc-check: allow(no-unwrap, "fixture: invariant documented")
let a = x.unwrap();
let b = y.unwrap(); // pc-check: allow(no-unwrap, "fixture: also fine")
let c = z.unwrap();
"#;
    let mut f = parse(src);
    let mut report = LintReport::default();
    super::check_no_unwrap(&mut f, &mut report);
    let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5], "only the unsuppressed site fires");
    assert_eq!(report.allowed.len(), 2);
}

#[test]
fn unreasoned_suppressions_are_violations() {
    let src = "let a = x.unwrap(); // pc-check: allow(no-unwrap)";
    let mut f = parse(src);
    let mut report = LintReport::default();
    super::check_no_unwrap(&mut f, &mut report);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, RULE_SUPPRESSION);
    assert!(report.allowed.is_empty());
}

#[test]
fn ordering_requires_invariant_comment_in_window() {
    let src = r#"
let a = flag.load(Ordering::Acquire);
// ordering: Release publish pairs with the Acquire load in `stop()`.
let b = flag.load(Ordering::Acquire);
let c = n.fetch_add(1, Ordering::Relaxed); // ordering: monotone counter, read after join
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_ORDERING), vec![2]);
}

#[test]
fn ordering_comment_window_is_bounded() {
    let src = "// ordering: too far away\n\n\n\n\n\nlet a = flag.load(Ordering::Acquire);";
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_ORDERING), vec![7]);
}

#[test]
fn cmp_ordering_is_ignored() {
    let mut f = parse("a.partial_cmp(&b).map(|o| o == std::cmp::Ordering::Less);");
    assert_eq!(findings_of(&mut f, RULE_ORDERING), Vec::<usize>::new());
}

#[test]
fn guard_across_socket_write_is_flagged() {
    let src = r#"
fn bad(conn: &Conn, stream: &mut TcpStream, frame: &[u8]) {
    let slots = conn.slots.lock().unwrap();
    stream.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), vec![4]);
}

#[test]
fn writing_through_the_write_guard_is_allowed() {
    let src = r#"
fn good(conn: &Conn, frame: &[u8]) {
    let mut w = conn.write.lock().unwrap();
    w.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), Vec::<usize>::new());
}

#[test]
fn dropped_guards_do_not_flag_later_writes() {
    let src = r#"
fn ok(conn: &Conn, stream: &mut TcpStream, frame: &[u8]) {
    let slots = conn.slots.lock().unwrap();
    drop(slots);
    stream.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), Vec::<usize>::new());
}

#[test]
fn scope_exit_releases_guards() {
    let src = r#"
fn ok(conn: &Conn, stream: &mut TcpStream, frame: &[u8]) {
    {
        let slots = conn.slots.lock().unwrap();
        let _ = slots.len();
    }
    stream.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), Vec::<usize>::new());
}

#[test]
fn recover_helpers_bind_guards_too() {
    let src = r#"
fn bad(conn: &Conn, stream: &mut TcpStream, frame: &[u8]) {
    let slots = lock_recover(&conn.slots);
    stream.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), vec![4]);
}

#[test]
fn writing_through_a_recovered_write_guard_is_allowed() {
    let src = r#"
fn good(conn: &Conn, frame: &[u8]) {
    let mut w = crate::sync_util::lock_recover(&conn.write);
    w.write_all(frame).ok();
}
"#;
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), Vec::<usize>::new());
}

#[test]
fn stream_writes_with_args_are_not_guard_bindings() {
    // `.write(buf)` has arguments — only the empty-paren lock APIs bind.
    let src = "let n = stream.write(&frame[..]);\nstream.write_all(&frame).ok();";
    let mut f = parse(src);
    assert_eq!(findings_of(&mut f, RULE_GUARD), Vec::<usize>::new());
}

#[test]
fn const_expr_evaluator_handles_the_real_shapes() {
    let mut env = BTreeMap::new();
    env.insert("EPOCH_BYTES".to_string(), 8);
    assert_eq!(eval_expr("16", &env), Some(16));
    assert_eq!(eval_expr("4 + EPOCH_BYTES", &env), Some(12));
    assert_eq!(eval_expr("(1 << 23) - 1", &env), Some((1 << 23) - 1));
    assert_eq!(eval_expr("8 << 20", &env), Some(8 << 20));
    assert_eq!(eval_expr("1 + 4 + 24", &env), Some(29));
    assert_eq!(eval_expr("2 * EPOCH_BYTES + 1", &env), Some(17));
    assert_eq!(eval_expr("0x1F", &env), Some(0x1F));
    assert_eq!(eval_expr("MISSING + 1", &env), None);
}

#[test]
fn collect_consts_reads_declarations() {
    let mut out = BTreeMap::new();
    collect_consts(
        "pub const A: u64 = 4096;\nconst B: usize = 33;\npub const C: u64 = 4 + A;\n\
         pub const NOT_INT: &str = \"x\";",
        &mut out,
    );
    assert_eq!(out.get("A"), Some(&4096));
    assert_eq!(out.get("B"), Some(&33));
    assert_eq!(out.get("C"), Some(&4100));
    assert!(!out.contains_key("NOT_INT"));
}

#[test]
fn stale_suppressions_are_reported_by_the_driver() {
    // Driven through run_lint in tests/workspace_clean.rs; here just the
    // bookkeeping: an allow that never matches stays unused.
    let f = parse("// pc-check: allow(no-unwrap, \"nothing here\")\nlet x = 1;");
    assert!(f.suppressions.iter().all(|s| !s.used));
}
