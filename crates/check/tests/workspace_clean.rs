//! The linter's own acceptance gate: the real workspace must lint clean.
//!
//! This is the test CI leans on — a fresh violation anywhere in the
//! panic-free crates (an unreasoned `.unwrap()`, an unannotated
//! `Ordering::*`, a guard held across a socket write, a drifted wire
//! constant, or a stale/reasonless suppression) fails the suite with the
//! finding list in the assertion message.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let report = pc_check::run_lint(&workspace_root()).expect("lint walks the workspace");
    assert!(report.files_scanned > 50, "scanned a real workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn every_suppression_is_reasoned_and_used() {
    let report = pc_check::run_lint(&workspace_root()).expect("lint walks the workspace");
    assert!(
        !report.allowed.is_empty(),
        "the burn-down left documented allows; zero means the scanner lost them"
    );
    for a in &report.allowed {
        assert!(
            !a.reason.trim().is_empty(),
            "{}:{}: allow({}) without a reason survived",
            a.file,
            a.line,
            a.rule
        );
    }
}

#[test]
fn report_serializes_for_the_ci_artifact() {
    let report = pc_check::run_lint(&workspace_root()).expect("lint walks the workspace");
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
    assert!(json.contains("\"allowed\""));
}
