//! The serialized wire protocol: every `Request`/`Response` envelope of
//! `pc_rtree::proto` encodes into one length-prefixed binary frame with a
//! versioned header, and decodes back — totally, with a typed [`WireError`]
//! for malformed input, never a panic.
//!
//! # Relationship to the `wire_bytes()` byte model
//!
//! The paper's evaluation is denominated in modeled bytes
//! (`proto::wire_bytes()` and the per-record constants next to the message
//! types). This crate *realizes* those sizes: each envelope's encoded
//! payload occupies exactly `wire_bytes()` bytes on the wire, with framing
//! and section headers itemized separately by [`request_overhead`] /
//! [`response_overhead`]. The invariant, pinned by proptests here and
//! cross-checked live by the TCP transport's measured counters:
//!
//! ```text
//! encode_request(c, s, req).len()  == req.wire_bytes()  + request_overhead(req)
//! encode_response(c, s, resp).len() == resp.wire_bytes() + response_overhead(resp)
//! ```
//!
//! so the paper-model ledger and the measured ledger stay comparable — the
//! difference is pure framing, never drift in the modeled payload sizes.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//!      0     1  magic      (0xAC)
//!      1     1  version    (1)
//!      2     1  tag        (request 1..=5, response 17..=21)
//!      3     1  flags      (0, reserved)
//!      4     4  seq        (LE; response echoes its request's seq)
//!      8     4  client     (LE ClientId)
//!     12     4  body_len   (LE; payload bytes following the header)
//!     16     …  body       (tag-specific, see `codec`)
//! ```
//!
//! Multi-byte integers are little-endian; `f64` travels as its IEEE-754
//! bit pattern (`to_bits`), so every finite value round-trips bit-exactly.

mod codec;
mod frame;

pub use codec::{
    decode_epoch_vector, decode_request, decode_response, decode_shard_sub_reply,
    decode_shard_sub_request, encode_epoch_vector, encode_request, encode_response,
    encode_shard_sub_reply, encode_shard_sub_request, request_overhead, response_overhead,
    RESPONSE_DIRECT_HEADER_BYTES, RESPONSE_REPLY_HEADER_BYTES, VERSIONED_FRESH_OVERHEAD_BYTES,
    VERSIONED_STALE_OVERHEAD_BYTES,
};
pub use frame::{read_frame, Frame, FrameHeader, FRAME_HEADER_BYTES, FRAME_MAGIC, WIRE_VERSION};

/// Frame tags, one per request/response envelope variant.
pub mod tag {
    pub const REQ_REMAINDER: u8 = 1;
    pub const REQ_REMAINDER_VERSIONED: u8 = 2;
    pub const REQ_DIRECT: u8 = 3;
    pub const REQ_REPORT_FMR: u8 = 4;
    pub const REQ_FORGET: u8 = 5;

    pub const RESP_REMAINDER: u8 = 17;
    pub const RESP_VERSIONED: u8 = 18;
    pub const RESP_DIRECT: u8 = 19;
    pub const RESP_NEW_D: u8 = 20;
    pub const RESP_FORGOTTEN: u8 = 21;

    /// Whether `t` names a request envelope.
    pub fn is_request(t: u8) -> bool {
        (REQ_REMAINDER..=REQ_FORGET).contains(&t)
    }

    /// Whether `t` names a response envelope.
    pub fn is_response(t: u8) -> bool {
        (RESP_REMAINDER..=RESP_FORGOTTEN).contains(&t)
    }
}

/// Everything that can go wrong reading or decoding a frame. Decoding is
/// total: malformed input always lands in one of these variants, never a
/// panic or an unbounded allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Closed,
    /// The input ended mid-structure: `context` names what was being read.
    Truncated {
        context: &'static str,
        needed: usize,
        got: usize,
    },
    /// The frame's declared body length exceeds the receiver's limit.
    Oversized { len: u64, max: u64 },
    /// An enum discriminant (frame tag, query kind, cell kind, reply
    /// variant, BPT code) was out of range for `context`.
    UnknownTag { context: &'static str, tag: u8 },
    /// The first header byte was not [`FRAME_MAGIC`].
    BadMagic { got: u8 },
    /// The protocol version byte did not match [`WIRE_VERSION`].
    BadVersion { got: u8 },
    /// The underlying stream failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated {
                context,
                needed,
                got,
            } => write!(f, "truncated {context}: needed {needed} bytes, got {got}"),
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: body {len} bytes exceeds limit {max}")
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag}")
            }
            WireError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:#04x} (expected {FRAME_MAGIC:#04x})"
                )
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (expected {WIRE_VERSION})"
                )
            }
            WireError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e.kind())
        }
    }
}
