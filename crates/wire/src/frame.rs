//! Frame header parsing and blocking frame reads.

use crate::WireError;
use std::io::Read;

/// First byte of every frame.
pub const FRAME_MAGIC: u8 = 0xAC;
/// Protocol version carried in byte 1 of every frame.
pub const WIRE_VERSION: u8 = 1;
/// Fixed size of the frame header preceding every body.
pub const FRAME_HEADER_BYTES: u64 = 16;

/// The parsed 16-byte frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    pub tag: u8,
    pub flags: u8,
    pub seq: u32,
    pub client: u32,
    pub body_len: u32,
}

impl FrameHeader {
    /// Validates magic + version and unpacks the fixed fields.
    pub fn parse(buf: [u8; FRAME_HEADER_BYTES as usize]) -> Result<FrameHeader, WireError> {
        if buf[0] != FRAME_MAGIC {
            return Err(WireError::BadMagic { got: buf[0] });
        }
        if buf[1] != WIRE_VERSION {
            return Err(WireError::BadVersion { got: buf[1] });
        }
        Ok(FrameHeader {
            tag: buf[2],
            flags: buf[3],
            seq: u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]),
            client: u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]),
            body_len: u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]),
        })
    }

    /// Serializes the header (the inverse of [`FrameHeader::parse`]).
    pub fn to_bytes(self) -> [u8; FRAME_HEADER_BYTES as usize] {
        let mut buf = [0u8; FRAME_HEADER_BYTES as usize];
        buf[0] = FRAME_MAGIC;
        buf[1] = WIRE_VERSION;
        buf[2] = self.tag;
        buf[3] = self.flags;
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        buf[8..12].copy_from_slice(&self.client.to_le_bytes());
        buf[12..16].copy_from_slice(&self.body_len.to_le_bytes());
        buf
    }
}

/// One frame off the stream: the parsed header plus the raw body (decode it
/// with [`crate::decode_request`] / [`crate::decode_response`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub header: FrameHeader,
    pub body: Vec<u8>,
}

/// Blocking read of one complete frame. A clean EOF *before the first
/// header byte* is a normal disconnect ([`WireError::Closed`]); an EOF
/// anywhere later is [`WireError::Truncated`]. A declared body length above
/// `max_body` is rejected *before* allocation ([`WireError::Oversized`]).
pub fn read_frame(r: &mut impl Read, max_body: u64) -> Result<Frame, WireError> {
    let mut hdr = [0u8; FRAME_HEADER_BYTES as usize];
    let mut filled = 0usize;
    while filled < hdr.len() {
        match r.read(&mut hdr[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated {
                        context: "frame header",
                        needed: hdr.len(),
                        got: filled,
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    let header = FrameHeader::parse(hdr)?;
    if header.body_len as u64 > max_body {
        return Err(WireError::Oversized {
            len: header.body_len as u64,
            max: max_body,
        });
    }
    let mut body = vec![0u8; header.body_len as usize];
    let mut filled = 0usize;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame body",
                    needed: body.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(Frame { header, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = FrameHeader {
            tag: 3,
            flags: 0,
            seq: 0xDEAD_BEEF,
            client: 42,
            body_len: 64,
        };
        assert_eq!(FrameHeader::parse(h.to_bytes()), Ok(h));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut buf = FrameHeader {
            tag: 1,
            flags: 0,
            seq: 0,
            client: 0,
            body_len: 0,
        }
        .to_bytes();
        buf[0] = 0x00;
        assert_eq!(FrameHeader::parse(buf), Err(WireError::BadMagic { got: 0 }));
        buf[0] = FRAME_MAGIC;
        buf[1] = 9;
        assert_eq!(
            FrameHeader::parse(buf),
            Err(WireError::BadVersion { got: 9 })
        );
    }

    #[test]
    fn eof_positions_distinguish_closed_from_truncated() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut { empty }, 1024), Err(WireError::Closed));

        let partial = &FrameHeader {
            tag: 1,
            flags: 0,
            seq: 0,
            client: 0,
            body_len: 0,
        }
        .to_bytes()[..7];
        assert!(matches!(
            read_frame(&mut { partial }, 1024),
            Err(WireError::Truncated {
                context: "frame header",
                ..
            })
        ));

        let mut with_missing_body = FrameHeader {
            tag: 1,
            flags: 0,
            seq: 0,
            client: 0,
            body_len: 10,
        }
        .to_bytes()
        .to_vec();
        with_missing_body.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut with_missing_body.as_slice(), 1024),
            Err(WireError::Truncated {
                context: "frame body",
                needed: 10,
                got: 4,
            })
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let huge = FrameHeader {
            tag: 1,
            flags: 0,
            seq: 0,
            client: 0,
            body_len: u32::MAX,
        }
        .to_bytes();
        assert_eq!(
            read_frame(&mut huge.as_slice(), 1 << 20),
            Err(WireError::Oversized {
                len: u32::MAX as u64,
                max: 1 << 20,
            })
        );
    }
}
