//! Body encode/decode for every protocol envelope.
//!
//! Layouts are chosen so each envelope's encoded body equals its
//! `wire_bytes()` model plus a fixed, itemized overhead (section headers
//! and variant discriminants) — see [`request_overhead`] /
//! [`response_overhead`] and the crate docs for the exact identity.
//!
//! All counts declared in section headers are validated against the bytes
//! actually remaining *before* any allocation, so a hostile frame cannot
//! drive an unbounded `Vec::with_capacity`.

use crate::frame::{FrameHeader, FRAME_HEADER_BYTES};
use crate::{tag, WireError};
use pc_geom::{Point, Rect};
use pc_rtree::bpt::Code;
use pc_rtree::proto::{
    CellKind, CellRecord, CellRef, DirectReply, EpochVector, HeapEntry, NodeShipment, QuerySpec,
    RemainderQuery, Request, Response, ServerReply, ShardSubReply, ShardSubRequest, Side,
    VersionedReply, FMR_REPORT_BYTES, FORGET_BYTES, QUERY_DESC_BYTES,
};
use pc_rtree::{NodeId, ObjectId, SpatialObject};

/// Section header of an encoded [`ServerReply`] (counts + expansions).
pub const RESPONSE_REPLY_HEADER_BYTES: u64 = 24;
/// Section header of an encoded [`DirectReply`].
pub const RESPONSE_DIRECT_HEADER_BYTES: u64 = 16;
/// Body bytes a `Fresh` versioned reply adds beyond its `wire_bytes()`
/// model (variant byte + invalidation count + the reply section header).
pub const VERSIONED_FRESH_OVERHEAD_BYTES: u64 = 1 + 4 + RESPONSE_REPLY_HEADER_BYTES;
/// Body bytes a `Stale` versioned reply adds beyond its model (variant
/// byte + invalidation count).
pub const VERSIONED_STALE_OVERHEAD_BYTES: u64 = 1 + 4;
/// Body bytes a `FullRefresh` refusal adds beyond its model (variant byte;
/// the model's 4-byte type tag doubles as the reserved word).
const VERSIONED_REFRESH_OVERHEAD_BYTES: u64 = 1;

/// Serialized size of a [`QuerySpec`]: kind byte + 32-byte payload.
const SPEC_BYTES: usize = 33;
/// Serialized size of one heap [`Side`]: packed flags + referent + MBR.
const SIDE_BYTES: usize = 40;

// Packed-word bit layout shared by heap sides and shipment cells: the BPT
// code's bits live in [0, 23), its length in [23, 28) — the balanced BPT
// split bounds real depths near 11, far below the 23-bit ceiling the
// encoder asserts — and the high bits carry per-use flags.
const CODE_BITS_MASK: u32 = (1 << 23) - 1;
const CODE_LEN_SHIFT: u32 = 23;
const CODE_LEN_MASK: u32 = 0x1F;
const SIDE_IS_OBJ: u32 = 1 << 28;
const SIDE_CACHED: u32 = 1 << 29;
const SIDE_HAS_PARTNER: u32 = 1 << 30;
const CELL_KIND_SHIFT: u32 = 28;
const CELL_KIND_MASK: u32 = 0x3;

fn pack_code(code: Code) -> u32 {
    let (bits, len) = code.raw();
    assert!(
        len as u32 <= CODE_LEN_SHIFT && bits <= CODE_BITS_MASK,
        "BPT code depth {len} exceeds the wire format's 23-bit budget"
    );
    bits | ((len as u32) << CODE_LEN_SHIFT)
}

fn unpack_code(packed: u32) -> Result<Code, WireError> {
    let bits = packed & CODE_BITS_MASK;
    let len = ((packed >> CODE_LEN_SHIFT) & CODE_LEN_MASK) as u8;
    Code::from_raw(bits, len).ok_or(WireError::UnknownTag {
        context: "bpt code",
        tag: len,
    })
}

// ---------------------------------------------------------------------
// Writer / reader primitives
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn pad(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    fn point(&mut self, p: Point) {
        self.f64(p.x);
        self.f64(p.y);
    }

    fn rect(&mut self, r: &Rect) {
        self.point(r.min);
        self.point(r.max);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                context,
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let s = self.take(2, context)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let s = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn point(&mut self, context: &'static str) -> Result<Point, WireError> {
        Ok(Point::new(self.f64(context)?, self.f64(context)?))
    }

    fn rect(&mut self, context: &'static str) -> Result<Rect, WireError> {
        let min = self.point(context)?;
        let max = self.point(context)?;
        // Construct directly: decode must reproduce the encoded value
        // bit-exactly, never re-normalize corners.
        Ok(Rect { min, max })
    }

    /// Validates that `count` elements of at least `min_elem` bytes each can
    /// still be present — the pre-allocation guard for hostile counts.
    fn expect_count(
        &self,
        count: u32,
        min_elem: usize,
        context: &'static str,
    ) -> Result<usize, WireError> {
        let need = (count as usize).saturating_mul(min_elem);
        if self.remaining() < need {
            return Err(WireError::Truncated {
                context,
                needed: need,
                got: self.remaining(),
            });
        }
        Ok(count as usize)
    }

    /// Decoding must consume the body exactly; trailing garbage is as
    /// malformed as a short body.
    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Truncated {
                context: "frame end (trailing bytes)",
                needed: self.pos,
                got: self.buf.len(),
            });
        }
        Ok(())
    }

    fn object_id(&mut self, context: &'static str) -> Result<ObjectId, WireError> {
        // Confirmations/invalidations travel as 8-byte records (the model's
        // CONFIRM/INVALIDATION_BYTES); ids are 32-bit, the high word must
        // be clear.
        let v = self.u64(context)?;
        u32::try_from(v)
            .map(ObjectId)
            .map_err(|_| WireError::UnknownTag { context, tag: 0xFF })
    }
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

fn put_spec(w: &mut Writer, spec: &QuerySpec) {
    match spec {
        QuerySpec::Range { window } => {
            w.u8(0);
            w.rect(window);
        }
        QuerySpec::Knn { center, k } => {
            w.u8(1);
            w.point(*center);
            w.u32(*k);
            w.pad(12);
        }
        QuerySpec::Join { dist } => {
            w.u8(2);
            w.f64(*dist);
            w.pad(24);
        }
    }
}

fn put_side(w: &mut Writer, side: &Side, has_partner: bool) {
    let partner = if has_partner { SIDE_HAS_PARTNER } else { 0 };
    match side {
        Side::Cell { cell, mbr } => {
            w.u32(pack_code(cell.code) | partner);
            w.u32(cell.node.0);
            w.rect(mbr);
        }
        Side::Obj { id, mbr, cached } => {
            let cached = if *cached { SIDE_CACHED } else { 0 };
            w.u32(SIDE_IS_OBJ | cached | partner);
            w.u32(id.0);
            w.rect(mbr);
        }
    }
}

fn put_remainder(w: &mut Writer, rq: &RemainderQuery) {
    put_spec(w, &rq.spec);
    w.u32(rq.already_found);
    w.u32(rq.heap.len() as u32);
    w.pad(QUERY_DESC_BYTES as usize - SPEC_BYTES - 8);
    for (key, entry) in &rq.heap {
        w.f64(*key);
        match entry {
            HeapEntry::Single(side) => put_side(w, side, false),
            HeapEntry::Pair(a, b) => {
                put_side(w, a, true);
                put_side(w, b, false);
            }
        }
    }
}

fn put_server_reply(w: &mut Writer, reply: &ServerReply) {
    w.u32(reply.confirmed.len() as u32);
    w.u32(reply.objects.len() as u32);
    w.u32(reply.pairs.len() as u32);
    w.u32(reply.index.len() as u32);
    w.u64(reply.expansions);
    for id in &reply.confirmed {
        w.u64(id.0 as u64);
    }
    for obj in &reply.objects {
        w.u32(obj.id.0);
        w.u32(obj.size_bytes);
        w.rect(&obj.mbr);
        // The payload itself: `size_bytes` of simulated object data, so the
        // measured downlink carries exactly the bytes the model charges.
        w.pad(obj.size_bytes as usize);
    }
    for (a, b) in &reply.pairs {
        w.u32(a.0);
        w.u32(b.0);
    }
    for ship in &reply.index {
        w.u32(ship.node.0);
        w.u16(ship.level);
        w.u8(ship.parent.is_some() as u8);
        w.u32(ship.parent.map_or(0, |p| p.0));
        w.u32(ship.cells.len() as u32);
        w.u8(0);
        for cell in &ship.cells {
            let (kind, child) = match cell.kind {
                CellKind::Super => (0u32, 0u32),
                CellKind::Node(n) => (1, n.0),
                CellKind::Object(o) => (2, o.0),
            };
            w.u32(pack_code(cell.code) | (kind << CELL_KIND_SHIFT));
            w.u32(child);
            w.rect(&cell.mbr);
        }
    }
}

fn request_body(req: &Request) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let t = match req {
        Request::Remainder(rq) => {
            put_remainder(&mut w, rq);
            tag::REQ_REMAINDER
        }
        Request::RemainderVersioned { query, epoch } => {
            w.u64(*epoch);
            put_remainder(&mut w, query);
            tag::REQ_REMAINDER_VERSIONED
        }
        Request::Direct(spec) => {
            put_spec(&mut w, spec);
            w.pad(QUERY_DESC_BYTES as usize - SPEC_BYTES);
            tag::REQ_DIRECT
        }
        Request::ReportFmr { fmr } => {
            w.f64(*fmr);
            w.pad(FMR_REPORT_BYTES as usize - 8);
            tag::REQ_REPORT_FMR
        }
        Request::Forget => {
            w.pad(FORGET_BYTES as usize);
            tag::REQ_FORGET
        }
    };
    (t, w.buf)
}

fn response_body(resp: &Response) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let t = match resp {
        Response::Remainder(reply) => {
            put_server_reply(&mut w, reply);
            tag::RESP_REMAINDER
        }
        Response::Versioned(v) => {
            match v {
                VersionedReply::Fresh {
                    reply,
                    invalidate,
                    epoch,
                } => {
                    w.u8(0);
                    w.u64(*epoch);
                    w.u32(invalidate.len() as u32);
                    put_server_reply(&mut w, reply);
                    for n in invalidate {
                        w.u64(n.0 as u64);
                    }
                }
                VersionedReply::Stale { invalidate, epoch } => {
                    w.u8(1);
                    w.u64(*epoch);
                    w.u32(invalidate.len() as u32);
                    for n in invalidate {
                        w.u64(n.0 as u64);
                    }
                }
                VersionedReply::FullRefresh { epoch } => {
                    w.u8(2);
                    w.u32(0);
                    w.u64(*epoch);
                }
            }
            tag::RESP_VERSIONED
        }
        Response::Direct(d) => {
            w.u32(d.results.len() as u32);
            w.u32(d.pairs.len() as u32);
            w.u64(d.expansions);
            for id in &d.results {
                w.u32(id.0);
            }
            for (a, b) in &d.pairs {
                w.u32(a.0);
                w.u32(b.0);
            }
            tag::RESP_DIRECT
        }
        Response::NewD(d) => {
            w.u8(*d);
            tag::RESP_NEW_D
        }
        Response::Forgotten(b) => {
            w.u8(*b as u8);
            tag::RESP_FORGOTTEN
        }
    };
    (t, w.buf)
}

fn assemble(tag: u8, seq: u32, client: u32, body: Vec<u8>) -> Vec<u8> {
    assert!(
        body.len() <= u32::MAX as usize,
        "frame body exceeds u32 length prefix"
    );
    let header = FrameHeader {
        tag,
        flags: 0,
        seq,
        client,
        body_len: body.len() as u32,
    };
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + body.len());
    frame.extend_from_slice(&header.to_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Encodes one request as a complete frame (header + body). The frame's
/// total length is `req.wire_bytes() + request_overhead(req)` — pinned by
/// this crate's proptests.
pub fn encode_request(client: u32, seq: u32, req: &Request) -> Vec<u8> {
    let (tag, body) = request_body(req);
    assemble(tag, seq, client, body)
}

/// Encodes one response as a complete frame, echoing the request's `seq`.
/// Total length is `resp.wire_bytes() + response_overhead(resp)`.
pub fn encode_response(client: u32, seq: u32, resp: &Response) -> Vec<u8> {
    let (tag, body) = response_body(resp);
    assemble(tag, seq, client, body)
}

/// Framing bytes an encoded request adds beyond its `wire_bytes()` model:
/// requests serialize into exactly their modeled size, so the overhead is
/// the frame header alone.
pub fn request_overhead(_req: &Request) -> u64 {
    FRAME_HEADER_BYTES
}

/// Framing + section-header bytes an encoded response adds beyond its
/// `wire_bytes()` model.
pub fn response_overhead(resp: &Response) -> u64 {
    FRAME_HEADER_BYTES
        + match resp {
            Response::Remainder(_) => RESPONSE_REPLY_HEADER_BYTES,
            Response::Versioned(VersionedReply::Fresh { .. }) => VERSIONED_FRESH_OVERHEAD_BYTES,
            Response::Versioned(VersionedReply::Stale { .. }) => VERSIONED_STALE_OVERHEAD_BYTES,
            Response::Versioned(VersionedReply::FullRefresh { .. }) => {
                VERSIONED_REFRESH_OVERHEAD_BYTES
            }
            Response::Direct(_) => RESPONSE_DIRECT_HEADER_BYTES,
            Response::NewD(_) | Response::Forgotten(_) => 0,
        }
}

// ---------------------------------------------------------------------
// Cluster backplane envelopes (no frame header: these travel router ↔
// shard inside one process today, but serialize for symmetry and tests)
// ---------------------------------------------------------------------

/// Encodes a per-shard epoch vector at exactly its `wire_bytes()` size.
pub fn encode_epoch_vector(v: &EpochVector) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(v.epochs.len() as u32);
    for &e in &v.epochs {
        w.u64(e);
    }
    w.buf
}

/// Decodes an epoch vector; total like the frame decoders.
pub fn decode_epoch_vector(body: &[u8]) -> Result<EpochVector, WireError> {
    let mut rd = Reader::new(body);
    let v = get_epoch_vector(&mut rd)?;
    rd.finish()?;
    Ok(v)
}

fn get_epoch_vector(rd: &mut Reader<'_>) -> Result<EpochVector, WireError> {
    let n = rd.u32("epoch vector length")?;
    let n = rd.expect_count(n, 8, "epoch vector")?;
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        epochs.push(rd.u64("epoch entry")?);
    }
    Ok(EpochVector { epochs })
}

/// Encodes one router → shard sub-query at exactly its `wire_bytes()`
/// size (routing header + the remainder sized like a client uplink).
pub fn encode_shard_sub_request(sub: &ShardSubRequest) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(sub.shard);
    w.u32(0);
    put_remainder(&mut w, &sub.query);
    w.buf
}

/// Decodes a shard sub-request.
pub fn decode_shard_sub_request(body: &[u8]) -> Result<ShardSubRequest, WireError> {
    let mut rd = Reader::new(body);
    let shard = rd.u32("sub-request shard")?;
    rd.u32("sub-request reserved")?;
    let query = get_remainder(&mut rd)?;
    rd.finish()?;
    Ok(ShardSubRequest { shard, query })
}

/// Encodes one shard → router partial reply. Encoded size is
/// `wire_bytes() + RESPONSE_REPLY_HEADER_BYTES` (the reply section header
/// is framing, same as on the client downlink).
pub fn encode_shard_sub_reply(sub: &ShardSubReply) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(sub.shard);
    w.u32(0);
    w.u32(sub.epochs.epochs.len() as u32);
    for &e in &sub.epochs.epochs {
        w.u64(e);
    }
    put_server_reply(&mut w, &sub.reply);
    w.buf
}

/// Decodes a shard sub-reply.
pub fn decode_shard_sub_reply(body: &[u8]) -> Result<ShardSubReply, WireError> {
    let mut rd = Reader::new(body);
    let shard = rd.u32("sub-reply shard")?;
    rd.u32("sub-reply reserved")?;
    let epochs = get_epoch_vector(&mut rd)?;
    let reply = get_server_reply(&mut rd)?;
    rd.finish()?;
    Ok(ShardSubReply {
        shard,
        epochs,
        reply,
    })
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

fn get_spec(rd: &mut Reader<'_>) -> Result<QuerySpec, WireError> {
    let kind = rd.u8("query spec")?;
    let spec = match kind {
        0 => QuerySpec::Range {
            window: rd.rect("range window")?,
        },
        1 => {
            let center = rd.point("knn center")?;
            let k = rd.u32("knn k")?;
            rd.take(12, "knn padding")?;
            QuerySpec::Knn { center, k }
        }
        2 => {
            let dist = rd.f64("join distance")?;
            rd.take(24, "join padding")?;
            QuerySpec::Join { dist }
        }
        t => {
            return Err(WireError::UnknownTag {
                context: "query spec",
                tag: t,
            })
        }
    };
    Ok(spec)
}

/// Returns the side plus its `has_partner` flag.
fn get_side(rd: &mut Reader<'_>) -> Result<(Side, bool), WireError> {
    let packed = rd.u32("heap side")?;
    let referent = rd.u32("heap side referent")?;
    let mbr = rd.rect("heap side mbr")?;
    let has_partner = packed & SIDE_HAS_PARTNER != 0;
    let side = if packed & SIDE_IS_OBJ != 0 {
        Side::Obj {
            id: ObjectId(referent),
            mbr,
            cached: packed & SIDE_CACHED != 0,
        }
    } else {
        Side::Cell {
            cell: CellRef {
                node: NodeId(referent),
                code: unpack_code(packed)?,
            },
            mbr,
        }
    };
    Ok((side, has_partner))
}

fn get_remainder(rd: &mut Reader<'_>) -> Result<RemainderQuery, WireError> {
    let spec = get_spec(rd)?;
    let already_found = rd.u32("remainder found-count")?;
    let heap_len = rd.u32("remainder heap length")?;
    rd.take(
        QUERY_DESC_BYTES as usize - SPEC_BYTES - 8,
        "remainder padding",
    )?;
    // A heap entry is at least one keyed single side.
    let n = rd.expect_count(heap_len, 8 + SIDE_BYTES, "remainder heap")?;
    let mut heap = Vec::with_capacity(n);
    for _ in 0..n {
        let key = rd.f64("heap key")?;
        let (first, has_partner) = get_side(rd)?;
        let entry = if has_partner {
            let (second, _) = get_side(rd)?;
            HeapEntry::Pair(first, second)
        } else {
            HeapEntry::Single(first)
        };
        heap.push((key, entry));
    }
    Ok(RemainderQuery {
        spec,
        already_found,
        heap,
    })
}

fn get_server_reply(rd: &mut Reader<'_>) -> Result<ServerReply, WireError> {
    let n_confirmed = rd.u32("reply confirmed count")?;
    let n_objects = rd.u32("reply object count")?;
    let n_pairs = rd.u32("reply pair count")?;
    let n_index = rd.u32("reply shipment count")?;
    let expansions = rd.u64("reply expansions")?;

    let n = rd.expect_count(n_confirmed, 8, "reply confirmations")?;
    let mut confirmed = Vec::with_capacity(n);
    for _ in 0..n {
        confirmed.push(rd.object_id("confirmed id")?);
    }

    let n = rd.expect_count(n_objects, 40, "reply objects")?;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ObjectId(rd.u32("object id")?);
        let size_bytes = rd.u32("object size")?;
        let mbr = rd.rect("object mbr")?;
        rd.take(size_bytes as usize, "object payload")?;
        objects.push(SpatialObject {
            id,
            mbr,
            size_bytes,
        });
    }

    let n = rd.expect_count(n_pairs, 8, "reply pairs")?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((ObjectId(rd.u32("pair a")?), ObjectId(rd.u32("pair b")?)));
    }

    let n = rd.expect_count(n_index, 16, "reply shipments")?;
    let mut index = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId(rd.u32("shipment node")?);
        let level = rd.u16("shipment level")?;
        let parent_flag = rd.u8("shipment parent flag")?;
        let parent_id = rd.u32("shipment parent")?;
        let n_cells = rd.u32("shipment cell count")?;
        rd.u8("shipment reserved")?;
        let parent = (parent_flag != 0).then_some(NodeId(parent_id));
        let c = rd.expect_count(n_cells, SIDE_BYTES, "shipment cells")?;
        let mut cells = Vec::with_capacity(c);
        for _ in 0..c {
            let packed = rd.u32("cell flags")?;
            let child = rd.u32("cell child")?;
            let mbr = rd.rect("cell mbr")?;
            let kind = match (packed >> CELL_KIND_SHIFT) & CELL_KIND_MASK {
                0 => CellKind::Super,
                1 => CellKind::Node(NodeId(child)),
                2 => CellKind::Object(ObjectId(child)),
                k => {
                    return Err(WireError::UnknownTag {
                        context: "cell kind",
                        tag: k as u8,
                    })
                }
            };
            cells.push(CellRecord {
                code: unpack_code(packed)?,
                mbr,
                kind,
            });
        }
        index.push(NodeShipment {
            node,
            level,
            parent,
            cells,
        });
    }

    Ok(ServerReply {
        confirmed,
        objects,
        pairs,
        index,
        expansions,
    })
}

/// Decodes a request body. Total: every malformed input maps to a
/// [`WireError`]; no panic, no unbounded allocation.
pub fn decode_request(t: u8, body: &[u8]) -> Result<Request, WireError> {
    let mut rd = Reader::new(body);
    let req = match t {
        tag::REQ_REMAINDER => Request::Remainder(get_remainder(&mut rd)?),
        tag::REQ_REMAINDER_VERSIONED => {
            let epoch = rd.u64("request epoch")?;
            Request::RemainderVersioned {
                query: get_remainder(&mut rd)?,
                epoch,
            }
        }
        tag::REQ_DIRECT => {
            let spec = get_spec(&mut rd)?;
            rd.take(QUERY_DESC_BYTES as usize - SPEC_BYTES, "direct padding")?;
            Request::Direct(spec)
        }
        tag::REQ_REPORT_FMR => {
            let fmr = rd.f64("fmr value")?;
            rd.take(FMR_REPORT_BYTES as usize - 8, "fmr padding")?;
            Request::ReportFmr { fmr }
        }
        tag::REQ_FORGET => {
            rd.take(FORGET_BYTES as usize, "forget body")?;
            Request::Forget
        }
        t => {
            return Err(WireError::UnknownTag {
                context: "request frame",
                tag: t,
            })
        }
    };
    rd.finish()?;
    Ok(req)
}

/// Decodes a response body. Total, like [`decode_request`].
pub fn decode_response(t: u8, body: &[u8]) -> Result<Response, WireError> {
    let mut rd = Reader::new(body);
    let resp = match t {
        tag::RESP_REMAINDER => Response::Remainder(get_server_reply(&mut rd)?),
        tag::RESP_VERSIONED => {
            let variant = rd.u8("versioned variant")?;
            let v = match variant {
                0 => {
                    let epoch = rd.u64("versioned epoch")?;
                    let n = rd.u32("invalidation count")?;
                    let reply = get_server_reply(&mut rd)?;
                    let n = rd.expect_count(n, 8, "invalidation list")?;
                    let mut invalidate = Vec::with_capacity(n);
                    for _ in 0..n {
                        invalidate.push(NodeId(rd.object_id("invalidated node")?.0));
                    }
                    VersionedReply::Fresh {
                        reply,
                        invalidate,
                        epoch,
                    }
                }
                1 => {
                    let epoch = rd.u64("versioned epoch")?;
                    let n = rd.u32("invalidation count")?;
                    let n = rd.expect_count(n, 8, "invalidation list")?;
                    let mut invalidate = Vec::with_capacity(n);
                    for _ in 0..n {
                        invalidate.push(NodeId(rd.object_id("invalidated node")?.0));
                    }
                    VersionedReply::Stale { invalidate, epoch }
                }
                2 => {
                    rd.u32("refresh reserved")?;
                    VersionedReply::FullRefresh {
                        epoch: rd.u64("refresh epoch")?,
                    }
                }
                t => {
                    return Err(WireError::UnknownTag {
                        context: "versioned reply",
                        tag: t,
                    })
                }
            };
            Response::Versioned(v)
        }
        tag::RESP_DIRECT => {
            let n_results = rd.u32("direct result count")?;
            let n_pairs = rd.u32("direct pair count")?;
            let expansions = rd.u64("direct expansions")?;
            let n = rd.expect_count(n_results, 4, "direct results")?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(ObjectId(rd.u32("direct result id")?));
            }
            let n = rd.expect_count(n_pairs, 8, "direct pairs")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((ObjectId(rd.u32("pair a")?), ObjectId(rd.u32("pair b")?)));
            }
            Response::Direct(DirectReply {
                results,
                pairs,
                expansions,
            })
        }
        tag::RESP_NEW_D => Response::NewD(rd.u8("resolution byte")?),
        tag::RESP_FORGOTTEN => Response::Forgotten(rd.u8("forgotten flag")? != 0),
        t => {
            return Err(WireError::UnknownTag {
                context: "response frame",
                tag: t,
            })
        }
    };
    rd.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    // -----------------------------------------------------------------
    // Seed-driven random envelope builders (exercise every variant)
    // -----------------------------------------------------------------

    fn arb_rect(rng: &mut SmallRng) -> Rect {
        let x0: f64 = rng.random_range(0.0..0.9);
        let y0: f64 = rng.random_range(0.0..0.9);
        Rect::from_coords(x0, y0, x0 + rng.random_range(0.0..0.1), y0 + 0.05)
    }

    fn arb_spec(rng: &mut SmallRng) -> QuerySpec {
        match rng.random_range(0u8..3) {
            0 => QuerySpec::Range {
                window: arb_rect(rng),
            },
            1 => QuerySpec::Knn {
                center: Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                k: rng.random_range(1u32..20),
            },
            _ => QuerySpec::Join {
                dist: rng.random_range(0.001..0.2),
            },
        }
    }

    fn arb_code(rng: &mut SmallRng) -> Code {
        let depth = rng.random_range(0u8..12);
        let mut code = Code::ROOT;
        for _ in 0..depth {
            code = code.child(rng.random_bool(0.5));
        }
        code
    }

    fn arb_side(rng: &mut SmallRng) -> Side {
        if rng.random_bool(0.5) {
            Side::Cell {
                cell: CellRef {
                    node: NodeId(rng.random_range(0u32..1000)),
                    code: arb_code(rng),
                },
                mbr: arb_rect(rng),
            }
        } else {
            Side::Obj {
                id: ObjectId(rng.random_range(0u32..100_000)),
                mbr: arb_rect(rng),
                cached: rng.random_bool(0.5),
            }
        }
    }

    fn arb_remainder(rng: &mut SmallRng) -> RemainderQuery {
        let n = rng.random_range(0usize..8);
        let heap = (0..n)
            .map(|_| {
                let key: f64 = rng.random_range(0.0..2.0);
                let entry = if rng.random_bool(0.3) {
                    HeapEntry::Pair(arb_side(rng), arb_side(rng))
                } else {
                    HeapEntry::Single(arb_side(rng))
                };
                (key, entry)
            })
            .collect();
        RemainderQuery {
            spec: arb_spec(rng),
            already_found: rng.random_range(0u32..50),
            heap,
        }
    }

    fn arb_server_reply(rng: &mut SmallRng) -> ServerReply {
        let objects = (0..rng.random_range(0usize..5))
            .map(|_| SpatialObject {
                id: ObjectId(rng.random_range(0u32..100_000)),
                mbr: arb_rect(rng),
                size_bytes: rng.random_range(0u32..4096),
            })
            .collect();
        let index = (0..rng.random_range(0usize..4))
            .map(|_| NodeShipment {
                node: NodeId(rng.random_range(0u32..1000)),
                level: rng.random_range(0u16..8),
                parent: rng
                    .random_bool(0.5)
                    .then(|| NodeId(rng.random_range(0u32..1000))),
                cells: (0..rng.random_range(0usize..6))
                    .map(|_| CellRecord {
                        code: arb_code(rng),
                        mbr: arb_rect(rng),
                        kind: match rng.random_range(0u8..3) {
                            0 => CellKind::Super,
                            1 => CellKind::Node(NodeId(rng.random_range(0u32..1000))),
                            _ => CellKind::Object(ObjectId(rng.random_range(0u32..100_000))),
                        },
                    })
                    .collect(),
            })
            .collect();
        ServerReply {
            confirmed: (0..rng.random_range(0usize..5))
                .map(|_| ObjectId(rng.random_range(0u32..100_000)))
                .collect(),
            objects,
            pairs: (0..rng.random_range(0usize..5))
                .map(|_| {
                    (
                        ObjectId(rng.random_range(0u32..1000)),
                        ObjectId(rng.random_range(0u32..1000)),
                    )
                })
                .collect(),
            index,
            expansions: rng.random_range(0u64..10_000),
        }
    }

    fn arb_request(rng: &mut SmallRng) -> Request {
        match rng.random_range(0u8..5) {
            0 => Request::Remainder(arb_remainder(rng)),
            1 => Request::RemainderVersioned {
                query: arb_remainder(rng),
                epoch: rng.random_range(0u64..1 << 40),
            },
            2 => Request::Direct(arb_spec(rng)),
            3 => Request::ReportFmr {
                fmr: rng.random_range(0.0..1.0),
            },
            _ => Request::Forget,
        }
    }

    fn arb_response(rng: &mut SmallRng) -> Response {
        let nodes = |rng: &mut SmallRng| -> Vec<NodeId> {
            (0..rng.random_range(0usize..6))
                .map(|_| NodeId(rng.random_range(0u32..1000)))
                .collect()
        };
        match rng.random_range(0u8..7) {
            0 => Response::Remainder(arb_server_reply(rng)),
            1 => Response::Versioned(VersionedReply::Fresh {
                reply: arb_server_reply(rng),
                invalidate: nodes(rng),
                epoch: rng.random_range(0u64..1 << 40),
            }),
            2 => Response::Versioned(VersionedReply::Stale {
                invalidate: nodes(rng),
                epoch: rng.random_range(0u64..1 << 40),
            }),
            3 => Response::Versioned(VersionedReply::FullRefresh {
                epoch: rng.random_range(0u64..1 << 40),
            }),
            4 => Response::Direct(DirectReply {
                results: (0..rng.random_range(0usize..10))
                    .map(|_| ObjectId(rng.random_range(0u32..100_000)))
                    .collect(),
                pairs: (0..rng.random_range(0usize..5))
                    .map(|_| {
                        (
                            ObjectId(rng.random_range(0u32..1000)),
                            ObjectId(rng.random_range(0u32..1000)),
                        )
                    })
                    .collect(),
                expansions: rng.random_range(0u64..10_000),
            }),
            5 => Response::NewD(rng.random_range(0u8..8)),
            _ => Response::Forgotten(rng.random_bool(0.5)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `decode(encode(x)) == x` for every request variant, and the
        /// encoded length matches the byte model plus itemized framing.
        #[test]
        fn request_round_trip_and_size_identity(seed in 0u64..1 << 48, client in 0u32..64, seq in 0u32..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let req = arb_request(&mut rng);
            let frame = encode_request(client, seq, &req);
            // Encoded length must equal the wire_bytes() model plus framing.
            prop_assert_eq!(frame.len() as u64, req.wire_bytes() + request_overhead(&req));
            let parsed = read_frame(&mut frame.as_slice(), u32::MAX as u64).unwrap();
            prop_assert_eq!(parsed.header.client, client);
            prop_assert_eq!(parsed.header.seq, seq);
            prop_assert!(tag::is_request(parsed.header.tag));
            let back = decode_request(parsed.header.tag, &parsed.body).unwrap();
            prop_assert_eq!(back, req);
        }

        /// Same identity for every response variant (including object
        /// payload padding: decoded objects keep their modeled sizes).
        #[test]
        fn response_round_trip_and_size_identity(seed in 0u64..1 << 48, client in 0u32..64, seq in 0u32..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let resp = arb_response(&mut rng);
            let frame = encode_response(client, seq, &resp);
            // Encoded length must equal the wire_bytes() model plus framing.
            prop_assert_eq!(frame.len() as u64, resp.wire_bytes() + response_overhead(&resp));
            let parsed = read_frame(&mut frame.as_slice(), u32::MAX as u64).unwrap();
            prop_assert!(tag::is_response(parsed.header.tag));
            let back = decode_response(parsed.header.tag, &parsed.body).unwrap();
            prop_assert_eq!(back, resp);
        }

        /// Truncating a valid frame at any point yields a typed error from
        /// the frame reader — never a panic, never a bogus success.
        #[test]
        fn truncated_prefixes_error_cleanly(seed in 0u64..1 << 48, frac in 0.0f64..1.0) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let frame = if seed % 2 == 0 {
                encode_request(7, 3, &arb_request(&mut rng))
            } else {
                encode_response(7, 3, &arb_response(&mut rng))
            };
            let cut = ((frame.len() as f64) * frac) as usize;
            if cut < frame.len() {
                let r = read_frame(&mut &frame[..cut], u32::MAX as u64);
                prop_assert!(r.is_err(), "prefix of {cut}/{} decoded", frame.len());
            }
        }

        /// Arbitrary bytes fed to the body decoders either decode or land
        /// in a typed `WireError` — totality under fuzz.
        #[test]
        fn arbitrary_bodies_never_panic(seed in 0u64..1 << 48, len in 0usize..300, t in 0u8..32) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let body: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
            let _ = decode_request(t, &body);
            let _ = decode_response(t, &body);
        }

        /// Flipping one byte of a valid frame body must never panic the
        /// decoder (it may still decode — flags/padding are lenient — but
        /// it must stay total).
        #[test]
        fn bit_flips_never_panic(seed in 0u64..1 << 48, at_frac in 0.0f64..1.0, delta in 1u8..=255) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let req = arb_request(&mut rng);
            let frame = encode_request(1, 1, &req);
            let mut body = frame[FRAME_HEADER_BYTES as usize..].to_vec();
            if !body.is_empty() {
                let at = ((body.len() as f64) * at_frac) as usize % body.len();
                body[at] = body[at].wrapping_add(delta);
                let tag = frame[2];
                let _ = decode_request(tag, &body);
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_request(1, 1, &Request::Forget);
        frame.push(0);
        let body = &frame[FRAME_HEADER_BYTES as usize..];
        assert!(matches!(
            decode_request(tag::REQ_FORGET, body),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_tags_are_typed() {
        assert_eq!(
            decode_request(0, &[]),
            Err(WireError::UnknownTag {
                context: "request frame",
                tag: 0
            })
        );
        assert_eq!(
            decode_response(99, &[]),
            Err(WireError::UnknownTag {
                context: "response frame",
                tag: 99
            })
        );
    }

    #[test]
    fn hostile_counts_cannot_drive_allocation() {
        // A remainder declaring u32::MAX heap entries with an empty tail
        // must fail the pre-allocation count check, not try to reserve.
        let rq = RemainderQuery {
            spec: QuerySpec::Join { dist: 0.1 },
            already_found: 0,
            heap: Vec::new(),
        };
        let frame = encode_request(1, 1, &Request::Remainder(rq));
        let mut body = frame[FRAME_HEADER_BYTES as usize..].to_vec();
        body[SPEC_BYTES + 4..SPEC_BYTES + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(tag::REQ_REMAINDER, &body),
            Err(WireError::Truncated {
                context: "remainder heap",
                ..
            })
        ));
    }

    #[test]
    fn backplane_envelopes_round_trip_at_model_size() {
        let mut rng = SmallRng::seed_from_u64(11);
        let vector = EpochVector {
            epochs: vec![3, 0, 7, 1 << 40],
        };
        let enc = encode_epoch_vector(&vector);
        assert_eq!(enc.len() as u64, vector.wire_bytes());
        assert_eq!(decode_epoch_vector(&enc), Ok(vector.clone()));

        let sub = ShardSubRequest {
            shard: 2,
            query: arb_remainder(&mut rng),
        };
        let enc = encode_shard_sub_request(&sub);
        assert_eq!(enc.len() as u64, sub.wire_bytes());
        assert_eq!(decode_shard_sub_request(&enc), Ok(sub));

        let reply = ShardSubReply {
            shard: 1,
            epochs: vector,
            reply: arb_server_reply(&mut rng),
        };
        let enc = encode_shard_sub_reply(&reply);
        assert_eq!(
            enc.len() as u64,
            reply.wire_bytes() + RESPONSE_REPLY_HEADER_BYTES
        );
        assert_eq!(decode_shard_sub_reply(&enc), Ok(reply));

        // Truncations of backplane envelopes are typed errors too.
        assert!(decode_epoch_vector(
            &encode_epoch_vector(&EpochVector { epochs: vec![1, 2] })[..7]
        )
        .is_err());
    }

    #[test]
    fn full_refresh_and_epoch_vectors_round_trip() {
        // The §7 refusal and a Fresh reply carrying invalidations — the
        // variants the versioned churn path depends on.
        for resp in [
            Response::Versioned(VersionedReply::FullRefresh { epoch: 77 }),
            Response::Versioned(VersionedReply::Stale {
                invalidate: vec![NodeId(1), NodeId(9)],
                epoch: 12,
            }),
            Response::Versioned(VersionedReply::Fresh {
                reply: ServerReply::default(),
                invalidate: vec![NodeId(4)],
                epoch: 3,
            }),
        ] {
            let frame = encode_response(0, 0, &resp);
            let parsed = read_frame(&mut frame.as_slice(), 1 << 20).unwrap();
            assert_eq!(decode_response(parsed.header.tag, &parsed.body), Ok(resp));
        }
    }
}
