//! Property-based tests for the geometry kernel: the R-tree and the query
//! engine lean on these identities for correctness, so they are pinned here
//! once and for all.

use crate::{Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn union_is_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_contains_operands(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn union_is_associative(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn intersects_iff_intersection_exists(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn overlap_area_matches_intersection(a in arb_rect(), b in arb_rect()) {
        let by_area = a.overlap_area(&b);
        let by_rect = a.intersection(&b).map(|i| i.area()).unwrap_or(0.0);
        prop_assert!((by_area - by_rect).abs() < 1e-12);
    }

    #[test]
    fn min_dist_lower_bounds_contained_points(r in arb_rect(), p in arb_point(), q in arb_point()) {
        // Any point inside r is at least min_dist(p) away from p.
        let inside = Point::new(
            r.min.x + (r.max.x - r.min.x) * q.x,
            r.min.y + (r.max.y - r.min.y) * q.y,
        );
        prop_assert!(r.contains_point(&inside));
        prop_assert!(p.dist(&inside) >= r.min_dist(&p) - 1e-12);
        prop_assert!(p.dist(&inside) <= r.max_dist(&p) + 1e-12);
    }

    #[test]
    fn min_dist_zero_iff_contained(r in arb_rect(), p in arb_point()) {
        if r.contains_point(&p) {
            prop_assert_eq!(r.min_dist(&p), 0.0);
        } else {
            prop_assert!(r.min_dist(&p) > 0.0);
        }
    }

    #[test]
    fn min_dist_rect_lower_bounds_point_pairs(a in arb_rect(), b in arb_rect(),
                                              s in arb_point(), t in arb_point()) {
        let pa = Point::new(a.min.x + a.width() * s.x, a.min.y + a.height() * s.y);
        let pb = Point::new(b.min.x + b.width() * t.x, b.min.y + b.height() * t.y);
        prop_assert!(pa.dist(&pb) >= a.min_dist_rect(&b) - 1e-12);
    }

    #[test]
    fn min_dist_rect_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert!((a.min_dist_rect(&b) - b.min_dist_rect(&a)).abs() < 1e-15);
    }

    #[test]
    fn enlargement_is_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
    }

    #[test]
    fn subtract_partitions_area(a in arb_rect(), b in arb_rect()) {
        let mut out = Vec::new();
        a.subtract(&b, &mut out);
        let covered = a.intersection(&b).map(|i| i.area()).unwrap_or(0.0);
        let total: f64 = out.iter().map(|p| p.area()).sum();
        prop_assert!((total - (a.area() - covered)).abs() < 1e-9);
        // Pieces stay inside `a` and avoid `b`.
        for p in &out {
            prop_assert!(a.contains_rect(p));
            prop_assert!(p.overlap_area(&b) < 1e-12);
        }
        // Pairwise disjoint.
        for i in 0..out.len() {
            for j in i + 1..out.len() {
                prop_assert!(out[i].overlap_area(&out[j]) < 1e-12);
            }
        }
    }

    #[test]
    fn centered_square_centers(c in arb_point(), side in 1e-6f64..0.5) {
        let r = Rect::centered_square(c, side);
        prop_assert!((r.width() - side).abs() < 1e-12);
        prop_assert!((r.height() - side).abs() < 1e-12);
        prop_assert!(r.center().dist(&c) < 1e-12);
    }
}
