use crate::Coord;

/// A point in the normalized unit square.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    pub x: Coord,
    pub y: Coord,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> Coord {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. inside priority-queue keys).
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> Coord {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation from `self` towards `to` by fraction `t ∈ [0,1]`.
    #[inline]
    pub fn lerp(&self, to: &Point, t: Coord) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// Clamps both coordinates into `[0, 1]` (the normalized data space).
    #[inline]
    pub fn clamp_unit(&self) -> Point {
        Point::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(0.25, 0.5);
        let b = Point::new(0.75, 0.125);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.5, 0.2);
        assert_eq!(a.min(&b), Point::new(0.1, 0.2));
        assert_eq!(a.max(&b), Point::new(0.5, 0.9));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 2.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(0.5, 1.0));
    }

    #[test]
    fn clamp_unit_clamps_out_of_range() {
        assert_eq!(Point::new(-0.5, 1.5).clamp_unit(), Point::new(0.0, 1.0));
        assert_eq!(Point::new(0.3, 0.7).clamp_unit(), Point::new(0.3, 0.7));
    }
}
