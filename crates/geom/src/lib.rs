//! Geometry kernel for the proactive-caching reproduction.
//!
//! Everything in the system — R-tree nodes, query windows, binary-partition
//! cells, semantic-cache regions — is described by axis-aligned rectangles
//! over a normalized `[0,1] × [0,1]` space, exactly as in the paper (both
//! evaluation datasets are "normalized to unit squares", §6.1).
//!
//! The kernel is deliberately small: [`Point`], [`Rect`] and the handful of
//! predicates and metrics the query algorithms need (`min_dist`,
//! intersection/containment tests, union, area/margin for R*-tree split
//! heuristics).

mod grid;
mod point;
mod rect;

pub use grid::TileGrid;
pub use point::Point;
pub use rect::Rect;

/// Coordinate scalar used throughout the workspace.
///
/// `f64` keeps the R*-tree split heuristics and distance-based pruning
/// numerically stable at paper scale (hundreds of thousands of objects in a
/// unit square leave ~1e-6-sized windows where `f32` would be marginal).
pub type Coord = f64;

#[cfg(test)]
mod proptests;
