use crate::{Coord, Point};

/// An axis-aligned rectangle (closed on all sides), the universal MBR type.
///
/// Invariant: `min.x <= max.x && min.y <= max.y` for every rectangle built
/// through the constructors. Degenerate rectangles (zero width and/or
/// height) are valid and represent points / segments — the NE dataset
/// substitute stores postal-zone centroids as degenerate MBRs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the corners
    /// so the invariant holds regardless of argument order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from coordinate extents.
    #[inline]
    pub fn from_coords(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// A square of side `side` centered at `c` (not clipped to the unit
    /// square; query windows near the border legitimately overhang).
    #[inline]
    pub fn centered_square(c: Point, side: Coord) -> Self {
        let h = side / 2.0;
        Rect::from_coords(c.x - h, c.y - h, c.x + h, c.y + h)
    }

    /// The whole normalized data space `[0,1]²`.
    pub const UNIT: Rect = Rect {
        min: Point::new(0.0, 0.0),
        max: Point::new(1.0, 1.0),
    };

    /// Width along x.
    #[inline]
    pub fn width(&self) -> Coord {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> Coord {
        self.max.y - self.min.y
    }

    /// Area (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> Coord {
        self.width() * self.height()
    }

    /// Half-perimeter, the "margin" used by the R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> Coord {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Union over an iterator of rectangles; `None` for an empty iterator.
    pub fn union_all<I: IntoIterator<Item = Rect>>(iter: I) -> Option<Rect> {
        iter.into_iter().reduce(|a, b| a.union(&b))
    }

    /// Closed-interval intersection test (touching edges count as
    /// intersecting, matching the paper's "a intersects b" join predicate).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, if any.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// Area of overlap with `other` (zero when disjoint), used by the R*
    /// `ChooseSubtree` overlap-enlargement criterion.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> Coord {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Whether `other` lies entirely inside `self` (borders included).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether the point lies inside (borders included).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Area increase required for `self` to absorb `other` (R-tree insert
    /// heuristic).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> Coord {
        self.union(other).area() - self.area()
    }

    /// `MINDIST(p, self)`: Euclidean distance from `p` to the nearest point
    /// of the rectangle; zero if `p` is inside. This is the priority-queue
    /// key of best-first kNN search (Hjaltason & Samet).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> Coord {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared `MINDIST` (cheaper; monotone in `min_dist`).
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> Coord {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Distance from `p` to the farthest point of the rectangle.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> Coord {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance between two rectangles (zero when intersecting);
    /// the pruning predicate of the distance join: a node pair can contain
    /// qualifying object pairs iff `min_dist_rect ≤ threshold`.
    #[inline]
    pub fn min_dist_rect(&self, other: &Rect) -> Coord {
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Subtracts `other` from `self`, appending up to four disjoint pieces
    /// to `out`. Used by the semantic cache to trim a query window against
    /// cached regions (Ren & Dunham-style remainder construction).
    ///
    /// Pieces are emitted in a fixed order (left, right, bottom, top strip)
    /// so the decomposition is deterministic.
    pub fn subtract(&self, other: &Rect, out: &mut Vec<Rect>) {
        let Some(ov) = self.intersection(other) else {
            out.push(*self);
            return;
        };
        if ov == *self {
            return; // fully covered
        }
        // Left strip.
        if ov.min.x > self.min.x {
            out.push(Rect::from_coords(
                self.min.x, self.min.y, ov.min.x, self.max.y,
            ));
        }
        // Right strip.
        if ov.max.x < self.max.x {
            out.push(Rect::from_coords(
                ov.max.x, self.min.y, self.max.x, self.max.y,
            ));
        }
        // Bottom strip (clamped to the overlap's x-extent).
        if ov.min.y > self.min.y {
            out.push(Rect::from_coords(ov.min.x, self.min.y, ov.max.x, ov.min.y));
        }
        // Top strip.
        if ov.max.y < self.max.y {
            out.push(Rect::from_coords(ov.min.x, ov.max.y, ov.max.x, self.max.y));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn new_normalizes_corners() {
        let a = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(a, r(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        assert_eq!(a.area(), 2.0);
        assert_eq!(a.margin(), 3.0);
        assert_eq!(a.center(), Point::new(1.0, 0.5));
    }

    #[test]
    fn degenerate_rect_is_a_point() {
        let p = Point::new(0.3, 0.4);
        let a = Rect::from_point(p);
        assert_eq!(a.area(), 0.0);
        assert!(a.contains_point(&p));
        assert_eq!(a.min_dist(&p), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 0.5, 0.5);
        let b = r(0.25, 0.25, 1.0, 0.75);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, 0.0, 1.0, 0.75));
    }

    #[test]
    fn union_all_empty_is_none() {
        assert_eq!(Rect::union_all(std::iter::empty()), None);
        assert_eq!(
            Rect::union_all([r(0.0, 0.0, 1.0, 1.0)]),
            Some(r(0.0, 0.0, 1.0, 1.0))
        );
    }

    #[test]
    fn intersects_touching_edges() {
        let a = r(0.0, 0.0, 0.5, 0.5);
        let b = r(0.5, 0.0, 1.0, 0.5); // shares an edge
        assert!(a.intersects(&b));
        let c = r(0.6, 0.6, 0.7, 0.7);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersection_matches_overlap_area() {
        let a = r(0.0, 0.0, 0.6, 0.6);
        let b = r(0.4, 0.2, 1.0, 0.5);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(0.4, 0.2, 0.6, 0.5));
        assert!((a.overlap_area(&b) - i.area()).abs() < 1e-12);
        assert_eq!(a.overlap_area(&r(0.9, 0.9, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains_rect(&r(0.2, 0.2, 0.8, 0.8)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&r(0.5, 0.5, 1.1, 0.9)));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.enlargement(&r(0.2, 0.2, 0.4, 0.4)), 0.0);
        assert!((a.enlargement(&r(0.0, 0.0, 2.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.min_dist(&Point::new(0.5, 0.5)), 0.0);
        // Point straight to the right of the box: distance is horizontal.
        assert!((a.min_dist(&Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        // Corner case: diagonal distance.
        let d = a.min_dist(&Point::new(2.0, 2.0));
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_is_to_farthest_corner() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let d = a.max_dist(&Point::new(0.0, 0.0));
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(a.max_dist(&Point::new(0.5, 0.5)) >= a.min_dist(&Point::new(0.5, 0.5)));
    }

    #[test]
    fn min_dist_rect_zero_when_touching() {
        let a = r(0.0, 0.0, 0.5, 0.5);
        let b = r(0.5, 0.5, 1.0, 1.0);
        assert_eq!(a.min_dist_rect(&b), 0.0);
        let c = r(0.8, 0.0, 1.0, 0.5);
        assert!((a.min_dist_rect(&c) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = r(0.0, 0.0, 0.4, 0.4);
        let b = r(0.5, 0.5, 1.0, 1.0);
        let mut out = Vec::new();
        a.subtract(&b, &mut out);
        assert_eq!(out, vec![a]);
    }

    #[test]
    fn subtract_covered_returns_nothing() {
        let a = r(0.2, 0.2, 0.4, 0.4);
        let b = r(0.0, 0.0, 1.0, 1.0);
        let mut out = Vec::new();
        a.subtract(&b, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn subtract_center_hole_gives_four_pieces_with_right_area() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(0.25, 0.25, 0.75, 0.75);
        let mut out = Vec::new();
        a.subtract(&b, &mut out);
        assert_eq!(out.len(), 4);
        let total: f64 = out.iter().map(|p| p.area()).sum();
        assert!((total - (a.area() - b.area())).abs() < 1e-12);
        // Pieces must be pairwise disjoint (no double counting).
        for i in 0..out.len() {
            for j in i + 1..out.len() {
                assert_eq!(out[i].overlap_area(&out[j]), 0.0);
            }
        }
        // And none may overlap the subtracted region.
        for p in &out {
            assert_eq!(p.overlap_area(&b), 0.0);
        }
    }
}
