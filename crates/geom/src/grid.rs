//! A fixed `g × g` tile grid over the unit square — the spatial
//! partitioning substrate for the sharded cluster: tiles map to shards,
//! objects live on every shard whose tiles their MBR covers, and query
//! windows decompose into the tile ranges they intersect.
//!
//! Tiles are half-open along interior boundaries and closed at the top
//! edge of the space, so every point of `[0,1]²` belongs to exactly one
//! tile while rectangles *crossing* a boundary cover the tiles on both
//! sides (the straddler-replication rule the router's dedup relies on).
//! This makes ownership sound: any point shared by an object MBR and a
//! query window lives in a tile that both of their covers contain.

use crate::{Coord, Point, Rect};

/// A `g × g` uniform grid of tiles over `[0,1] × [0,1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    g: u32,
}

impl TileGrid {
    /// A grid with `g` tiles per axis (`g ≥ 1`).
    pub fn new(g: u32) -> Self {
        assert!(g >= 1, "a tile grid needs at least one tile per axis");
        TileGrid { g }
    }

    /// Tiles per axis.
    pub fn per_axis(&self) -> u32 {
        self.g
    }

    /// Total tile count (`g²`).
    pub fn tiles(&self) -> u32 {
        self.g * self.g
    }

    /// Side length of one tile.
    pub fn tile_size(&self) -> Coord {
        1.0 / self.g as Coord
    }

    /// The closed rectangle of tile `(tx, ty)`.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> Rect {
        debug_assert!(tx < self.g && ty < self.g);
        let s = self.tile_size();
        Rect::from_coords(
            tx as Coord * s,
            ty as Coord * s,
            (tx + 1) as Coord * s,
            (ty + 1) as Coord * s,
        )
    }

    /// Row-major index of tile `(tx, ty)`.
    pub fn index(&self, tx: u32, ty: u32) -> u32 {
        debug_assert!(tx < self.g && ty < self.g);
        ty * self.g + tx
    }

    /// The tile containing `p`, clamped into the grid (points at or beyond
    /// the top/right edge land in the last tile, so every point of the
    /// plane owns exactly one tile).
    pub fn tile_of_point(&self, p: &Point) -> (u32, u32) {
        (self.axis_tile(p.x), self.axis_tile(p.y))
    }

    fn axis_tile(&self, c: Coord) -> u32 {
        let t = (c * self.g as Coord).floor();
        (t.max(0.0) as u32).min(self.g - 1)
    }

    /// Iterates the tiles `r` covers (intersects with positive or zero
    /// extent), in row-major order. A rectangle lying exactly on an
    /// interior boundary covers the tiles on both sides.
    pub fn cover(&self, r: &Rect) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (x0, y0) = self.tile_of_point(&r.min);
        let (x1, y1) = self.tile_of_point(&r.max);
        (y0..=y1).flat_map(move |ty| (x0..=x1).map(move |tx| (tx, ty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_map_to_their_tile() {
        let g = TileGrid::new(4);
        assert_eq!(g.tiles(), 16);
        assert_eq!(g.tile_of_point(&Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.tile_of_point(&Point::new(0.26, 0.74)), (1, 2));
        // Top/right edges clamp into the last tile.
        assert_eq!(g.tile_of_point(&Point::new(1.0, 1.0)), (3, 3));
        assert_eq!(g.tile_of_point(&Point::new(1.7, -0.2)), (3, 0));
    }

    #[test]
    fn tile_rects_tile_the_unit_square() {
        let g = TileGrid::new(3);
        let mut area = 0.0;
        for ty in 0..3 {
            for tx in 0..3 {
                area += g.tile_rect(tx, ty).area();
            }
        }
        assert!((area - 1.0).abs() < 1e-12);
        assert_eq!(g.tile_rect(0, 0).max, g.tile_rect(1, 1).min);
    }

    #[test]
    fn cover_is_the_intersecting_tile_block() {
        let g = TileGrid::new(4);
        let r = Rect::from_coords(0.3, 0.3, 0.6, 0.4);
        let got: Vec<(u32, u32)> = g.cover(&r).collect();
        assert_eq!(got, vec![(1, 1), (2, 1)]);
        // Each covered tile really intersects, and the others don't.
        for ty in 0..4 {
            for tx in 0..4 {
                assert_eq!(
                    g.tile_rect(tx, ty).intersects(&r),
                    got.contains(&(tx, ty)),
                    "tile ({tx},{ty})"
                );
            }
        }
    }

    #[test]
    fn boundary_rects_cover_both_sides() {
        // A rect crossing the 2×2 center corner covers all 4 tiles; a
        // degenerate point rect exactly on the boundary owns just the
        // high-side tile (half-open interior boundaries).
        let g = TileGrid::new(2);
        let crossing = Rect::centered_square(Point::new(0.5, 0.5), 0.04);
        let got: Vec<(u32, u32)> = g.cover(&crossing).collect();
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        let on_boundary = Rect::from_point(Point::new(0.5, 0.5));
        assert_eq!(g.cover(&on_boundary).collect::<Vec<_>>(), vec![(1, 1)]);
    }

    #[test]
    fn single_tile_grid_owns_everything() {
        let g = TileGrid::new(1);
        assert_eq!(g.tiles(), 1);
        assert_eq!(g.cover(&Rect::UNIT).count(), 1);
        assert_eq!(g.tile_of_point(&Point::new(0.99, 0.01)), (0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_grid_is_rejected() {
        TileGrid::new(0);
    }
}
